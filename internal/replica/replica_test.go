package replica_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	stgq "repro"
	"repro/internal/journal"
	"repro/internal/replica"
	"repro/internal/service"
)

// leaderHarness bundles a durable leader and its HTTP server.
type leaderHarness struct {
	st *journal.Store
	ts *httptest.Server
}

func startLeader(t *testing.T, dir string, opts journal.Options) *leaderHarness {
	t.Helper()
	st, err := journal.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(service.NewWithStore(st))
	t.Cleanup(func() {
		// Store first: closing it ends any in-flight replication
		// long-poll, which ts.Close would otherwise wait out (up to the
		// streamer's MaxConnected) regardless of cleanup ordering.
		st.Close()
		ts.Close()
	})
	return &leaderHarness{st: st, ts: ts}
}

// followerHarness bundles a follower, its HTTP server and its lifecycle.
type followerHarness struct {
	fo   *replica.Follower
	ts   *httptest.Server
	stop func() // cancels Run, waits for it, closes the follower
}

func startFollower(t *testing.T, dir, leaderURL string) *followerHarness {
	t.Helper()
	fo, err := replica.NewFollower(replica.Config{
		LeaderURL:  leaderURL,
		Dir:        dir,
		MinBackoff: 5 * time.Millisecond,
		MaxBackoff: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(service.NewFollower(fo, leaderURL))
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		fo.Run(ctx)
		close(done)
	}()
	stopped := false
	h := &followerHarness{fo: fo, ts: ts, stop: nil}
	h.stop = func() {
		if stopped {
			return
		}
		stopped = true
		cancel()
		<-done
		ts.Close()
		if err := fo.Close(); err != nil {
			t.Errorf("follower close: %v", err)
		}
	}
	t.Cleanup(h.stop)
	return h
}

// waitCaughtUp blocks until the follower has applied every record the
// leader assigned.
func waitCaughtUp(t *testing.T, fo *replica.Follower, leader *journal.Store) {
	t.Helper()
	target := leader.LastSeq()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if fo.Status().AppliedSeq >= target {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("follower stuck at seq %d, leader at %d (status %+v)",
		fo.Status().AppliedSeq, target, fo.Status())
}

func post(t *testing.T, ts *httptest.Server, path string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// buildPopulation drives n people with a well-connected core onto the
// leader's planner (journaled through the store's mutation hook).
func buildPopulation(t *testing.T, pl *stgq.Planner, n int) {
	t.Helper()
	ids := make([]stgq.PersonID, 0, n)
	for i := 0; i < n; i++ {
		id, err := pl.AddPerson(fmt.Sprintf("p%d", i))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		for j := i - 3; j < i; j++ {
			if j < 0 {
				continue
			}
			if err := pl.Connect(ids[j], id, float64(1+(i+j)%7)); err != nil {
				t.Fatal(err)
			}
		}
		if err := pl.SetAvailable(id, (i%3)*2, 10+(i%4)); err != nil {
			t.Fatal(err)
		}
	}
}

// planOn runs the same STGQ on a server and returns the raw response body.
func planOn(t *testing.T, ts *httptest.Server, initiator int) []byte {
	t.Helper()
	resp, body := post(t, ts, "/query/activity", map[string]any{
		"initiator": initiator, "p": 4, "s": 2, "k": 1, "m": 3,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("activity query: status %d: %s", resp.StatusCode, body)
	}
	return body
}

// TestLeaderFollowerEndToEnd is the acceptance scenario: mutations driven
// on the leader (over HTTP and through the durable planner) become
// visible on the follower, which answers PlanActivity identically once
// lag reaches zero — including after a follower restart from its own
// data dir.
func TestLeaderFollowerEndToEnd(t *testing.T) {
	leader := startLeader(t, t.TempDir(), journal.Options{HorizonSlots: 14})
	fdir := t.TempDir()
	f := startFollower(t, fdir, leader.ts.URL)

	// Mutations over the leader's HTTP API...
	for i, name := range []string{"ana", "bo", "cy", "di"} {
		if resp, body := post(t, leader.ts, "/people", map[string]any{"name": name}); resp.StatusCode != http.StatusOK {
			t.Fatalf("add %s: %d %s", name, resp.StatusCode, body)
		}
		if i > 0 {
			if resp, body := post(t, leader.ts, "/friendships", map[string]any{"a": i - 1, "b": i, "distance": 2.5}); resp.StatusCode != http.StatusOK {
				t.Fatalf("connect: %d %s", resp.StatusCode, body)
			}
		}
	}
	// ...and in bulk through the journaled planner.
	buildPopulation(t, leader.st.Planner(), 40)

	waitCaughtUp(t, f.fo, leader.st)
	if got, want := planOn(t, f.ts, 10), planOn(t, leader.ts, 10); !bytes.Equal(got, want) {
		t.Fatalf("follower plan diverged:\n  follower %s\n  leader   %s", got, want)
	}

	// The follower rejects mutations with 403 and a leader hint.
	resp, body := post(t, f.ts, "/people", map[string]any{"name": "eve"})
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("follower accepted a mutation: %d %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-STGQ-Leader"); got != leader.ts.URL {
		t.Fatalf("X-STGQ-Leader = %q, want %q", got, leader.ts.URL)
	}
	var errBody struct {
		Error  string `json:"error"`
		Leader string `json:"leader"`
	}
	if err := json.Unmarshal(body, &errBody); err != nil || errBody.Leader != leader.ts.URL {
		t.Fatalf("403 body lacks leader hint: %s (%v)", body, err)
	}

	// Status reports the replica role and zero lag.
	st, stBody := get(t, f.ts, "/status")
	if st.StatusCode != http.StatusOK {
		t.Fatalf("status: %d", st.StatusCode)
	}
	var status struct {
		Role        string          `json:"role"`
		Leader      string          `json:"leader"`
		Replication *replica.Status `json:"replication"`
	}
	if err := json.Unmarshal(stBody, &status); err != nil {
		t.Fatal(err)
	}
	if status.Role != "follower" || status.Leader != leader.ts.URL || status.Replication == nil {
		t.Fatalf("follower status incomplete: %s", stBody)
	}
	if status.Replication.LagRecords != 0 || status.Replication.AppliedSeq != leader.st.LastSeq() {
		t.Fatalf("follower should be caught up: %+v", *status.Replication)
	}

	// More leader mutations keep flowing — privacy policies included,
	// which replicate as MutSetPolicy records like any other mutation.
	if err := leader.st.Planner().SetBusy(10, 0, 5); err != nil {
		t.Fatal(err)
	}
	if err := leader.st.Planner().SetSchedulePolicy(11, stgq.ShareNone); err != nil {
		t.Fatal(err)
	}
	// Location mutations replicate too, and the follower surfaces its
	// applied-location coverage in Status — a move relocates an already-
	// located person, so it must not double count.
	if err := leader.st.Planner().SetLocation(10, 120, -45); err != nil {
		t.Fatal(err)
	}
	if err := leader.st.Planner().SetLocation(11, 300, 900); err != nil {
		t.Fatal(err)
	}
	if err := leader.st.Planner().SetLocation(10, 121, -46); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, f.fo, leader.st)
	if got := f.fo.Planner().SchedulePolicy(11); got != stgq.ShareNone {
		t.Fatalf("policy did not replicate: person 11 = %v, want none", got)
	}
	if got := f.fo.Status().LocatedPeople; got != 2 {
		t.Fatalf("follower LocatedPeople = %d, want 2", got)
	}
	if x, y, ok := f.fo.Planner().Location(10); !ok || x != 121 || y != -46 {
		t.Fatalf("location move did not replicate: (%v,%v,%v)", x, y, ok)
	}
	if got, want := planOn(t, f.ts, 10), planOn(t, leader.ts, 10); !bytes.Equal(got, want) {
		t.Fatalf("follower plan diverged after update:\n  follower %s\n  leader   %s", got, want)
	}

	// Restart the follower from its own data dir: it must resume at its
	// applied position (not re-bootstrap) and keep replicating.
	applied := f.fo.Status().AppliedSeq
	f.stop()
	buildPopulation(t, leader.st.Planner(), 10) // leader moves on while the follower is down

	f2 := startFollower(t, fdir, leader.ts.URL)
	if got := f2.fo.Status().AppliedSeq; got != applied {
		t.Fatalf("restarted follower recovered seq %d from disk, want %d", got, applied)
	}
	if got := f2.fo.Status().LocatedPeople; got != 2 {
		t.Fatalf("restarted follower recovered LocatedPeople = %d from disk, want 2", got)
	}
	waitCaughtUp(t, f2.fo, leader.st)
	if f2.fo.Status().Bootstraps != 0 {
		t.Fatalf("restart should resume from disk, not bootstrap: %+v", f2.fo.Status())
	}
	if got, want := planOn(t, f2.ts, 10), planOn(t, leader.ts, 10); !bytes.Equal(got, want) {
		t.Fatalf("restarted follower diverged:\n  follower %s\n  leader   %s", got, want)
	}
	// The records that arrived while the follower was down are applied:
	// both sides agree on the population.
	wantPeople, wantFriends := leader.st.Planner().Counts()
	gotPeople, gotFriends := f2.fo.Planner().Counts()
	if gotPeople != wantPeople || gotFriends != wantFriends {
		t.Fatalf("follower population %d/%d, leader %d/%d", gotPeople, gotFriends, wantPeople, wantFriends)
	}
}

func get(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestFollowerCatchUpAcrossCompaction disconnects a follower, lets the
// leader snapshot + compact past the follower's position, and checks the
// reconnecting follower bootstraps from the snapshot and converges to
// query-equivalence.
func TestFollowerCatchUpAcrossCompaction(t *testing.T) {
	// Automatic snapshots off: the test controls compaction precisely.
	leader := startLeader(t, t.TempDir(), journal.Options{HorizonSlots: 14, SnapshotEvery: -1})
	buildPopulation(t, leader.st.Planner(), 20)

	fdir := t.TempDir()
	f := startFollower(t, fdir, leader.ts.URL)
	waitCaughtUp(t, f.fo, leader.st)
	stale := f.fo.Status().AppliedSeq
	f.stop() // follower disconnects

	// Leader moves on and compacts its journal past the follower's
	// position: records ≤ the snapshot seq no longer exist as records.
	buildPopulation(t, leader.st.Planner(), 20)
	if err := leader.st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if snap := leader.st.Stats().LastSnapshotSeq; snap <= stale {
		t.Fatalf("test setup: snapshot seq %d does not cover follower position %d", snap, stale)
	}
	if _, err := leader.st.ReadCommitted(stale, 16); !errors.Is(err, journal.ErrCompacted) {
		t.Fatalf("leader should have compacted past seq %d, ReadCommitted err = %v", stale, err)
	}

	// The reconnecting follower must bootstrap from the snapshot and
	// then stream the tail.
	f2 := startFollower(t, fdir, leader.ts.URL)
	waitCaughtUp(t, f2.fo, leader.st)
	if f2.fo.Status().Bootstraps == 0 {
		t.Fatalf("follower crossed a compaction without bootstrapping: %+v", f2.fo.Status())
	}
	if got, want := planOn(t, f2.ts, 25), planOn(t, leader.ts, 25); !bytes.Equal(got, want) {
		t.Fatalf("post-bootstrap follower diverged:\n  follower %s\n  leader   %s", got, want)
	}

	// And the bootstrap is durable: a restart recovers from the
	// follower's own disk at the caught-up position.
	applied := f2.fo.Status().AppliedSeq
	f2.stop()
	f3 := startFollower(t, fdir, leader.ts.URL)
	if got := f3.fo.Status().AppliedSeq; got != applied {
		t.Fatalf("restart after bootstrap recovered seq %d, want %d", got, applied)
	}
	waitCaughtUp(t, f3.fo, leader.st)
	if got, want := planOn(t, f3.ts, 25), planOn(t, leader.ts, 25); !bytes.Equal(got, want) {
		t.Fatalf("restarted follower diverged:\n  follower %s\n  leader   %s", got, want)
	}
}

// TestFollowerJoinsAfterLeaderRecoveredFromSnapshot covers the fresh
// follower whose after=0 position predates the leader's whole journal
// (the leader itself booted from a snapshot): the very first stream must
// be a bootstrap.
func TestFollowerJoinsAfterLeaderRecoveredFromSnapshot(t *testing.T) {
	ldir := t.TempDir()
	leader := startLeader(t, ldir, journal.Options{HorizonSlots: 14, SnapshotEvery: -1})
	buildPopulation(t, leader.st.Planner(), 15)
	if err := leader.st.Snapshot(); err != nil {
		t.Fatal(err)
	}

	f := startFollower(t, t.TempDir(), leader.ts.URL)
	waitCaughtUp(t, f.fo, leader.st)
	if f.fo.Status().Bootstraps == 0 {
		t.Fatalf("fresh follower behind a compacted journal must bootstrap: %+v", f.fo.Status())
	}
	if got, want := planOn(t, f.ts, 8), planOn(t, leader.ts, 8); !bytes.Equal(got, want) {
		t.Fatalf("follower diverged:\n  follower %s\n  leader   %s", got, want)
	}
}

// TestFollowerSurvivesLeaderRestart exercises reconnect-with-backoff: the
// leader goes away mid-replication and comes back on a new port; pointing
// a Follower at a stable URL is the operator's job, so the test uses a
// reverse proxy address that outlives the leader restart.
func TestFollowerSurvivesLeaderRestart(t *testing.T) {
	ldir := t.TempDir()
	leader1 := startLeader(t, ldir, journal.Options{HorizonSlots: 14})
	buildPopulation(t, leader1.st.Planner(), 10)

	// A trivial stable frontdoor for the leader's moving URL.
	var target atomic.Value // string: the current leader base URL
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, target.Load().(string)+r.URL.Path+"?"+r.URL.RawQuery, nil)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		fl, _ := w.(http.Flusher)
		buf := make([]byte, 4096)
		for {
			n, rerr := resp.Body.Read(buf)
			if n > 0 {
				if _, werr := w.Write(buf[:n]); werr != nil {
					return
				}
				if fl != nil {
					fl.Flush()
				}
			}
			if rerr != nil {
				return
			}
		}
	}))
	// Registered before startFollower so cleanup (LIFO) stops the
	// follower first — httptest's Close waits out in-flight long-polls.
	t.Cleanup(proxy.Close)
	target.Store(leader1.ts.URL)

	f := startFollower(t, t.TempDir(), proxy.URL)
	waitCaughtUp(t, f.fo, leader1.st)

	// Leader restarts: clean close, reopen on a fresh port. The store
	// closes first so the in-flight stream ends (httptest's Close waits
	// for outstanding requests).
	if err := leader1.st.Close(); err != nil {
		t.Fatal(err)
	}
	leader1.ts.Close()
	// With the frontdoor still pointing at the dead leader, the follower
	// must observe at least one failed connect before the new leader
	// appears — this makes the reconnect-with-backoff assertion
	// deterministic instead of racing the restart window.
	deadline := time.Now().Add(15 * time.Second)
	for f.fo.Status().Reconnects == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("follower never noticed the dead leader: %+v", f.fo.Status())
		}
		time.Sleep(2 * time.Millisecond)
	}
	leader2 := startLeader(t, ldir, journal.Options{HorizonSlots: 14})
	target.Store(leader2.ts.URL)
	buildPopulation(t, leader2.st.Planner(), 5)

	waitCaughtUp(t, f.fo, leader2.st)
	if got, want := planOn(t, f.ts, 7), planOn(t, leader2.ts, 7); !bytes.Equal(got, want) {
		t.Fatalf("follower diverged after leader restart:\n  follower %s\n  leader   %s", got, want)
	}
}

// --- failover: epochs, fencing, promotion ----------------------------------

// waitForError blocks until the follower reports a LastError containing
// substr.
func waitForError(t *testing.T, fo *replica.Follower, substr string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if s := fo.Status().LastError; strings.Contains(s, substr) {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("follower never reported %q: %+v", substr, fo.Status())
}

// TestFollowerRejectsLowerEpochLeader pins the fencing contract: a
// follower whose local history is at a higher epoch refuses a
// lower-epoch leader's stream — it neither applies records nor
// bootstraps, because rolling back onto a fenced timeline would undo a
// completed failover.
func TestFollowerRejectsLowerEpochLeader(t *testing.T) {
	leader := startLeader(t, t.TempDir(), journal.Options{HorizonSlots: 14})
	buildPopulation(t, leader.st.Planner(), 10)

	fdir := t.TempDir()
	f := startFollower(t, fdir, leader.ts.URL)
	waitCaughtUp(t, f.fo, leader.st)
	applied := f.fo.Status().AppliedSeq
	f.stop()

	// The cluster failed over elsewhere: this follower's history now
	// belongs to epoch 2, while the old leader — revived — still streams
	// epoch 1.
	if _, err := journal.BumpEpoch(fdir, applied); err != nil {
		t.Fatal(err)
	}
	buildPopulation(t, leader.st.Planner(), 5) // the fenced leader moves on

	f2 := startFollower(t, fdir, leader.ts.URL)
	waitForError(t, f2.fo, "fenced")
	st := f2.fo.Status()
	if st.AppliedSeq != applied {
		t.Fatalf("fenced follower applied records: seq %d, want %d", st.AppliedSeq, applied)
	}
	if st.Bootstraps != 0 {
		t.Fatalf("fenced follower bootstrapped from a stale leader: %+v", st)
	}
	if st.Epoch != 2 {
		t.Fatalf("follower epoch %d, want 2", st.Epoch)
	}
}

// TestFollowerBootstrapsAcrossFailoverDivergence: after a failover to a
// leader whose history is shorter than the follower's (the promoted
// replica had not applied the dead leader's tail), the follower must
// detect the epoch-with-divergence and rebuild from the new leader's
// snapshot rather than splicing two histories.
func TestFollowerBootstrapsAcrossFailoverDivergence(t *testing.T) {
	leaderA := startLeader(t, t.TempDir(), journal.Options{HorizonSlots: 14})
	buildPopulation(t, leaderA.st.Planner(), 30)

	fdir := t.TempDir()
	f := startFollower(t, fdir, leaderA.ts.URL)
	waitCaughtUp(t, f.fo, leaderA.st)
	f.stop()
	if err := leaderA.st.Close(); err != nil {
		t.Fatal(err)
	}
	leaderA.ts.Close()

	// Leader B: a shorter history at epoch 2 (the promoted survivor of a
	// failover the follower slept through).
	bdir := t.TempDir()
	seed, err := journal.Open(bdir, journal.Options{HorizonSlots: 14})
	if err != nil {
		t.Fatal(err)
	}
	buildPopulation(t, seed.Planner(), 12)
	forkB := seed.LastSeq()
	if err := seed.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := journal.BumpEpoch(bdir, forkB); err != nil {
		t.Fatal(err)
	}
	leaderB := startLeader(t, bdir, journal.Options{HorizonSlots: 14})
	if f.fo.Status().AppliedSeq <= leaderB.st.LastSeq() {
		t.Fatalf("test setup: follower at %d must be ahead of leader B at %d",
			f.fo.Status().AppliedSeq, leaderB.st.LastSeq())
	}

	f2 := startFollower(t, fdir, leaderB.ts.URL)
	// waitCaughtUp would pass trivially here — the follower starts AHEAD
	// of leader B; wait for the re-bootstrap onto B's history instead.
	deadline := time.Now().Add(15 * time.Second)
	for f2.fo.Status().Bootstraps == 0 || f2.fo.Status().AppliedSeq != leaderB.st.LastSeq() {
		if time.Now().After(deadline) {
			t.Fatalf("divergent follower never re-bootstrapped onto epoch 2: %+v", f2.fo.Status())
		}
		time.Sleep(2 * time.Millisecond)
	}
	st := f2.fo.Status()
	if st.Epoch != 2 {
		t.Fatalf("follower epoch %d after failover, want 2", st.Epoch)
	}
	if got, want := planOn(t, f2.ts, 5), planOn(t, leaderB.ts, 5); !bytes.Equal(got, want) {
		t.Fatalf("post-failover follower diverged:\n  follower %s\n  leader   %s", got, want)
	}
}

// TestPromote drives the promotion seam directly: the promoted store
// re-opens writable at epoch+1 with every applied record intact, the old
// follower handle becomes inert, and a fresh follower replicates from
// the promoted leader at the new epoch.
func TestPromote(t *testing.T) {
	leader := startLeader(t, t.TempDir(), journal.Options{HorizonSlots: 14})
	buildPopulation(t, leader.st.Planner(), 20)

	f := startFollower(t, t.TempDir(), leader.ts.URL)
	waitCaughtUp(t, f.fo, leader.st)
	applied := f.fo.Status().AppliedSeq

	st, err := f.fo.Promote()
	if err != nil {
		t.Fatal(err)
	}
	// Store before server (and after f2's harness, registered later, has
	// stopped): closing the store ends the replication long-poll that
	// would otherwise stall the server close for its full MaxConnected.
	var pts *httptest.Server
	t.Cleanup(func() {
		st.Close()
		if pts != nil {
			pts.Close()
		}
	})
	if got := st.Epoch(); got != 2 {
		t.Fatalf("promoted store at epoch %d, want 2", got)
	}
	if got := st.LastSeq(); got != applied {
		t.Fatalf("promoted store lost records: seq %d, want %d", got, applied)
	}
	// The promoted store accepts (and journals) new writes.
	if _, err := st.Planner().AddPerson("postfailover"); err != nil {
		t.Fatalf("promoted store rejected a write: %v", err)
	}
	if got := st.LastSeq(); got != applied+1 {
		t.Fatalf("write not journaled: seq %d, want %d", got, applied+1)
	}
	// Promote is terminal for the follower: a second call and Close are
	// rejected/no-ops, and the store stays open for its new owner.
	if _, err := f.fo.Promote(); err == nil {
		t.Fatal("second Promote succeeded")
	}
	if err := f.fo.Close(); err != nil {
		t.Fatalf("post-promotion Close: %v", err)
	}
	if _, err := st.Planner().AddPerson("stillopen"); err != nil {
		t.Fatalf("follower Close closed the promoted store: %v", err)
	}

	// A fresh follower replicates from the promoted leader and adopts
	// epoch 2.
	pts = httptest.NewServer(service.NewWithStore(st))
	f2 := startFollower(t, t.TempDir(), pts.URL)
	waitCaughtUp(t, f2.fo, st)
	if got := f2.fo.Status().Epoch; got != 2 {
		t.Fatalf("follower of promoted leader at epoch %d, want 2", got)
	}
	if got, want := planOn(t, f2.ts, 5), planOn(t, pts, 5); !bytes.Equal(got, want) {
		t.Fatalf("follower of promoted leader diverged:\n  follower %s\n  leader   %s", got, want)
	}
}

// TestFollowerBootstrapsWhenOrphanedTailBelowLeaderSeq pins the sharper
// divergence rule: the new leader's DURABLE seq may race past the
// follower's orphaned tail, so divergence must be judged against the
// epoch's fork point, not the durable position. Here the follower (seq
// 10) reconnects to an epoch-2 leader that forked at 8 but has already
// reached 13 — a durable-seq comparison would silently splice records
// 11..13 on top of the orphaned 9..10.
func TestFollowerBootstrapsWhenOrphanedTailBelowLeaderSeq(t *testing.T) {
	leaderA := startLeader(t, t.TempDir(), journal.Options{HorizonSlots: 14})
	for i := 0; i < 10; i++ {
		if _, err := leaderA.st.Planner().AddPerson(fmt.Sprintf("a%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	fdir := t.TempDir()
	f := startFollower(t, fdir, leaderA.ts.URL)
	waitCaughtUp(t, f.fo, leaderA.st)
	f.stop()
	if err := leaderA.st.Close(); err != nil {
		t.Fatal(err)
	}
	leaderA.ts.Close()

	// Leader B forked at seq 8 (epoch 2) and has moved on to seq 13.
	bdir := t.TempDir()
	seed, err := journal.Open(bdir, journal.Options{HorizonSlots: 14})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := seed.Planner().AddPerson(fmt.Sprintf("a%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := seed.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := journal.BumpEpoch(bdir, 8); err != nil {
		t.Fatal(err)
	}
	leaderB := startLeader(t, bdir, journal.Options{HorizonSlots: 14})
	for i := 0; i < 5; i++ {
		if _, err := leaderB.st.Planner().AddPerson(fmt.Sprintf("b%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if leaderB.st.LastSeq() <= f.fo.Status().AppliedSeq {
		t.Fatalf("test setup: leader B at %d must be past the follower's %d",
			leaderB.st.LastSeq(), f.fo.Status().AppliedSeq)
	}

	f2 := startFollower(t, fdir, leaderB.ts.URL)
	deadline := time.Now().Add(15 * time.Second)
	for f2.fo.Status().Bootstraps == 0 || f2.fo.Status().AppliedSeq != leaderB.st.LastSeq() {
		if time.Now().After(deadline) {
			t.Fatalf("follower spliced instead of re-bootstrapping: %+v", f2.fo.Status())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := f2.fo.Status().Epoch; got != 2 {
		t.Fatalf("follower epoch %d, want 2", got)
	}
	// The orphaned a8/a9 are gone; the population is exactly leader B's.
	wantPeople, wantFriends := leaderB.st.Planner().Counts()
	if gotPeople, gotFriends := f2.fo.Planner().Counts(); gotPeople != wantPeople || gotFriends != wantFriends {
		t.Fatalf("follower population %d/%d after re-bootstrap, leader B %d/%d",
			gotPeople, gotFriends, wantPeople, wantFriends)
	}
}
