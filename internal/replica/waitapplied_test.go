package replica_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/journal"
)

// TestWaitApplied covers the read-barrier primitive: an already-reached
// floor returns immediately, a floor ahead of the applied position is
// released by replication catching up, an unreachable floor runs out the
// caller's deadline, and a closed follower fails waiters fast instead of
// letting them ride out the deadline.
func TestWaitApplied(t *testing.T) {
	leader := startLeader(t, t.TempDir(), journal.Options{HorizonSlots: 14})
	for i := 0; i < 5; i++ {
		if _, err := leader.st.Planner().AddPerson("p"); err != nil {
			t.Fatal(err)
		}
	}
	f := startFollower(t, t.TempDir(), leader.ts.URL)
	waitCaughtUp(t, f.fo, leader.st)

	// Already applied: immediate.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := f.fo.WaitApplied(ctx, 5); err != nil {
		t.Fatalf("reached floor: %v", err)
	}

	// A floor one write ahead is released by the replicated write.
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- f.fo.WaitApplied(ctx, 6)
	}()
	if _, err := leader.st.Planner().AddPerson("late"); err != nil { // seq 6
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("barrier not released by the replicated write: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("WaitApplied never woke for the replicated write")
	}

	// An unreachable floor runs out the caller's deadline.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel2()
	if err := f.fo.WaitApplied(ctx2, 999); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("unreachable floor: err %v, want deadline exceeded", err)
	}

	// A closed follower fails pending waiters promptly (ErrClosed, not a
	// full deadline wait).
	waiting := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		waiting <- f.fo.WaitApplied(ctx, 999)
	}()
	time.Sleep(10 * time.Millisecond) // let the waiter park
	f.stop()
	select {
	case err := <-waiting:
		if !errors.Is(err, journal.ErrClosed) {
			t.Fatalf("waiter on closed follower: err %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("close never released the parked waiter")
	}

	// And a follower that is already closed fails immediately.
	if err := f.fo.WaitApplied(context.Background(), 999); !errors.Is(err, journal.ErrClosed) {
		t.Fatalf("closed follower: err %v, want ErrClosed", err)
	}
}

// TestWaitAppliedAcrossPromotion: Promote seals replication; parked
// barrier waiters must wake and fail rather than block the promotion's
// clients for their full deadline. (The service swaps the follower out
// on promotion, so new reads barrier against the store instead.)
func TestWaitAppliedAcrossPromotion(t *testing.T) {
	leader := startLeader(t, t.TempDir(), journal.Options{HorizonSlots: 14})
	if _, err := leader.st.Planner().AddPerson("p"); err != nil {
		t.Fatal(err)
	}
	f := startFollower(t, t.TempDir(), leader.ts.URL)
	waitCaughtUp(t, f.fo, leader.st)

	waiting := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		waiting <- f.fo.WaitApplied(ctx, 999)
	}()
	time.Sleep(10 * time.Millisecond)
	st, err := f.fo.Promote()
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	select {
	case err := <-waiting:
		if err == nil {
			t.Fatal("waiter satisfied by a promotion that never reached its floor")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("promotion never released the parked waiter")
	}
}
