// Package replica is the journal-shipping replication subsystem: a leader
// streams its committed journal records to followers, which replay them
// into their own durable stores and serve read-only query traffic. SGQ and
// STGQ queries are read-heavy, NP-hard searches that dwarf mutation cost —
// the classic case for read replicas — and the journal's total order of
// sequence numbers makes the replication stream trivial to define: a
// follower at sequence number n needs exactly the committed records n+1,
// n+2, … .
//
// # Topology
//
//	writers ──► leader stgqd ──(WAL + snapshots)──► data dir
//	                 │ GET /replication/stream?after=n   (long-poll, ndjson)
//	     ┌───────────┼───────────┐
//	     ▼           ▼           ▼
//	 follower    follower    follower      each: own data dir, read-only
//	 /query/*    /query/*    /query/*      HTTP service, 403 + leader
//	                                       hint on mutations
//
// The leader side (Streamer) serves committed records straight from the
// journal's segment files — tailing shares no locks with the write path.
// When a follower's position has been compacted away (the leader folded it
// into a snapshot and deleted the segments), the stream opens with a
// snapshot bootstrap instead and the follower resets its store from it.
//
// The follower side (Follower) applies each record through the same
// journal.Apply path recovery uses, with its own journal store's mutation
// hook installed — so every applied record is re-journaled and fsynced
// locally, and a restarted (or promoted) follower recovers from its own
// disk without re-bootstrapping from the leader.
//
// # Consistency model
//
// Replication is asynchronous: the leader acknowledges writes after its
// own fsync, not the followers'. Each follower applies records in
// sequence-number order, so it always holds a prefix of the leader's
// history — reads are monotonic and prefix-consistent per follower, merely
// stale. Staleness is observable: Follower.Status reports the applied and
// leader sequence numbers, the record lag and the time since the leader
// was last heard from (heartbeats bound it even when idle).
//
// # Wire protocol
//
// One HTTP GET per stream, newline-delimited JSON frames:
//
//	→ GET /replication/stream?after=<seq>[&bootstrap=1]
//	← {"k":"records","after":<seq>,"seq":<leaderDurable>,"epoch":<e>}  header, then
//	← {"k":"r","seq":125,"op":2,"a":3,"b":9,"d":4.5}        record frames
//	← {"k":"hb","seq":<leaderDurable>,"epoch":<e>}          idle heartbeats
//
// or, when the position is compacted (or a bootstrap is forced):
//
//	← {"k":"snapshot","seq":<snapSeq>,"epoch":<e>}          header, then
//	← <dataset JSON>                                        one frame
//
// The leader closes every stream after MaxConnected; followers reconnect
// (with backoff after errors) and resume from their own last sequence
// number, so a dropped connection can at worst duplicate records, which
// the follower skips.
//
// # Failover: epochs, fencing, promotion
//
// Each durable history belongs to a leader epoch (persisted in the
// journal's meta file, advertised on every stream header and heartbeat).
// The follower enforces three rules against the advertised epoch:
//
//   - below its own local epoch: the "leader" is a revived ex-leader from
//     before a failover — the stream is refused outright; neither records
//     nor a snapshot from a fenced timeline may touch the local store.
//   - exactly one above its own, with the local position at or before the
//     advertised fork point (the seq where the promotion departed the old
//     timeline): the local history is provably a shared prefix; the
//     follower durably adopts the new epoch (so a later promotion of this
//     follower outranks the whole observed chain) and keeps streaming.
//   - any other jump — a local tail past the fork (the dead leader's
//     orphaned writes, even if the new leader's durable seq has since
//     raced past it) or a multi-epoch jump whose intermediate forks are
//     unknown: the follower forces a snapshot re-bootstrap onto the new
//     history rather than risk splicing divergent timelines.
//
// Promote (the handler behind the service's POST /promote) performs the
// failover itself: it seals replication, waits out any in-flight apply,
// closes the follower's store, bumps the epoch in the data dir, and
// re-opens the store writable. The caller (the HTTP service) then serves
// mutations and the replication stream from it — every surviving
// follower re-homes on its next reconnect, and the dead leader is fenced
// the moment it comes back.
package replica

import (
	stgq "repro"
	"repro/internal/journal"
)

// Frame kinds of the ndjson stream.
const (
	kindRecords   = "records"  // header: record frames follow
	kindSnapshot  = "snapshot" // header: one dataset JSON frame follows
	kindRecord    = "r"
	kindHeartbeat = "hb"
	kindError     = "err"
)

// wireMsg is one ndjson frame — a union of the header, record, heartbeat
// and error shapes (the dataset frame of a snapshot stream is raw dataset
// JSON instead). Zero-valued fields round-trip through omitempty safely:
// person 0 and distance 0 decode back to their zero values.
type wireMsg struct {
	Kind  string `json:"k"`
	After uint64 `json:"after,omitempty"` // kindRecords: resume position
	Seq   uint64 `json:"seq,omitempty"`   // record/snapshot seq; hb/header: leader durable seq
	// Epoch is the leader's epoch, advertised on stream headers and
	// heartbeats — the fencing coordinate. A follower rejects streams
	// from a leader whose epoch is below its own (a revived, demoted
	// ex-leader), and a pre-epoch leader (0) is treated as epoch 1.
	Epoch uint64 `json:"epoch,omitempty"`
	// Fork is the sequence number at which the leader's epoch began (its
	// promotion point), sent on stream headers. A follower crossing an
	// epoch boundary holds a shared prefix of the new history iff its
	// applied position is at or before the fork; a longer local tail is
	// the dead leader's orphaned writes and forces a re-bootstrap.
	Fork uint64 `json:"fork,omitempty"`
	Err  string `json:"err,omitempty"`

	// Record payload (kindRecord), mirroring stgq.Mutation.
	Op   uint8   `json:"op,omitempty"`
	Name string  `json:"name,omitempty"`
	P    int     `json:"p,omitempty"`
	A    int     `json:"a,omitempty"`
	B    int     `json:"b,omitempty"`
	D    float64 `json:"d,omitempty"`
	From int     `json:"from,omitempty"`
	To   int     `json:"to,omitempty"`
	Pol  int     `json:"pol,omitempty"`
	X    float64 `json:"x,omitempty"`
	Y    float64 `json:"y,omitempty"`
}

func toWire(rec journal.Record) wireMsg {
	m := rec.Mut
	return wireMsg{
		Kind: kindRecord,
		Seq:  rec.Seq,
		Op:   uint8(m.Op),
		Name: m.Name,
		P:    int(m.Person),
		A:    int(m.A),
		B:    int(m.B),
		D:    m.Distance,
		From: m.From,
		To:   m.To,
		Pol:  int(m.Policy),
		X:    m.X,
		Y:    m.Y,
	}
}

func fromWire(w wireMsg) journal.Record {
	return journal.Record{
		Seq: w.Seq,
		Mut: stgq.Mutation{
			Op:       stgq.MutationOp(w.Op),
			Name:     w.Name,
			Person:   stgq.PersonID(w.P),
			A:        stgq.PersonID(w.A),
			B:        stgq.PersonID(w.B),
			Distance: w.D,
			From:     w.From,
			To:       w.To,
			Policy:   stgq.SharePolicy(w.Pol),
			X:        w.X,
			Y:        w.Y,
		},
	}
}
