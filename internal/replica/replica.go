// Package replica is the journal-shipping replication subsystem: a leader
// streams its committed journal records to followers, which replay them
// into their own durable stores and serve read-only query traffic. SGQ and
// STGQ queries are read-heavy, NP-hard searches that dwarf mutation cost —
// the classic case for read replicas — and the journal's total order of
// sequence numbers makes the replication stream trivial to define: a
// follower at sequence number n needs exactly the committed records n+1,
// n+2, … .
//
// # Topology
//
//	writers ──► leader stgqd ──(WAL + snapshots)──► data dir
//	                 │ GET /replication/stream?after=n   (long-poll, ndjson)
//	     ┌───────────┼───────────┐
//	     ▼           ▼           ▼
//	 follower    follower    follower      each: own data dir, read-only
//	 /query/*    /query/*    /query/*      HTTP service, 403 + leader
//	                                       hint on mutations
//
// The leader side (Streamer) serves committed records straight from the
// journal's segment files — tailing shares no locks with the write path.
// When a follower's position has been compacted away (the leader folded it
// into a snapshot and deleted the segments), the stream opens with a
// snapshot bootstrap instead and the follower resets its store from it.
//
// The follower side (Follower) applies each record through the same
// journal.Apply path recovery uses, with its own journal store's mutation
// hook installed — so every applied record is re-journaled and fsynced
// locally, and a restarted (or promoted) follower recovers from its own
// disk without re-bootstrapping from the leader.
//
// # Consistency model
//
// Replication is asynchronous: the leader acknowledges writes after its
// own fsync, not the followers'. Each follower applies records in
// sequence-number order, so it always holds a prefix of the leader's
// history — reads are monotonic and prefix-consistent per follower, merely
// stale. Staleness is observable: Follower.Status reports the applied and
// leader sequence numbers, the record lag and the time since the leader
// was last heard from (heartbeats bound it even when idle).
//
// # Wire protocol
//
// One HTTP GET per stream, newline-delimited JSON frames:
//
//	→ GET /replication/stream?after=<seq>[&bootstrap=1]
//	← {"k":"records","after":<seq>,"seq":<leaderDurable>}   header, then
//	← {"k":"r","seq":125,"op":2,"a":3,"b":9,"d":4.5}        record frames
//	← {"k":"hb","seq":<leaderDurable>}                      idle heartbeats
//
// or, when the position is compacted (or a bootstrap is forced):
//
//	← {"k":"snapshot","seq":<snapSeq>}                      header, then
//	← <dataset JSON>                                        one frame
//
// The leader closes every stream after MaxConnected; followers reconnect
// (with backoff after errors) and resume from their own last sequence
// number, so a dropped connection can at worst duplicate records, which
// the follower skips.
package replica

import (
	stgq "repro"
	"repro/internal/journal"
)

// Frame kinds of the ndjson stream.
const (
	kindRecords   = "records"  // header: record frames follow
	kindSnapshot  = "snapshot" // header: one dataset JSON frame follows
	kindRecord    = "r"
	kindHeartbeat = "hb"
	kindError     = "err"
)

// wireMsg is one ndjson frame — a union of the header, record, heartbeat
// and error shapes (the dataset frame of a snapshot stream is raw dataset
// JSON instead). Zero-valued fields round-trip through omitempty safely:
// person 0 and distance 0 decode back to their zero values.
type wireMsg struct {
	Kind  string `json:"k"`
	After uint64 `json:"after,omitempty"` // kindRecords: resume position
	Seq   uint64 `json:"seq,omitempty"`   // record/snapshot seq; hb/header: leader durable seq
	Err   string `json:"err,omitempty"`

	// Record payload (kindRecord), mirroring stgq.Mutation.
	Op   uint8   `json:"op,omitempty"`
	Name string  `json:"name,omitempty"`
	P    int     `json:"p,omitempty"`
	A    int     `json:"a,omitempty"`
	B    int     `json:"b,omitempty"`
	D    float64 `json:"d,omitempty"`
	From int     `json:"from,omitempty"`
	To   int     `json:"to,omitempty"`
	Pol  int     `json:"pol,omitempty"`
}

func toWire(rec journal.Record) wireMsg {
	m := rec.Mut
	return wireMsg{
		Kind: kindRecord,
		Seq:  rec.Seq,
		Op:   uint8(m.Op),
		Name: m.Name,
		P:    int(m.Person),
		A:    int(m.A),
		B:    int(m.B),
		D:    m.Distance,
		From: m.From,
		To:   m.To,
		Pol:  int(m.Policy),
	}
}

func fromWire(w wireMsg) journal.Record {
	return journal.Record{
		Seq: w.Seq,
		Mut: stgq.Mutation{
			Op:       stgq.MutationOp(w.Op),
			Name:     w.Name,
			Person:   stgq.PersonID(w.P),
			A:        stgq.PersonID(w.A),
			B:        stgq.PersonID(w.B),
			Distance: w.D,
			From:     w.From,
			To:       w.To,
			Policy:   stgq.SharePolicy(w.Pol),
		},
	}
}
