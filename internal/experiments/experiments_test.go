package experiments

import (
	"strings"
	"testing"
	"time"
)

func quickCfg() Config {
	return Config{Seed: 42, Trials: 1, Quick: true}
}

func TestFig1aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing sweep")
	}
	fig := Fig1a(quickCfg())
	if len(fig.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range fig.Rows {
		for _, s := range fig.Series {
			if _, ok := r.Values[s]; !ok {
				t.Errorf("%s: missing series %s", r.X, s)
			}
		}
	}
	// The headline claim: at the largest p of the sweep the baseline is
	// slower than SGSelect.
	last := fig.Rows[len(fig.Rows)-1]
	if last.Values["Baseline"] <= last.Values["SGSelect"] {
		t.Errorf("at %s baseline (%v) should exceed SGSelect (%v)",
			last.X, last.Values["Baseline"], last.Values["SGSelect"])
	}
}

func TestFig1eShape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing sweep")
	}
	fig := Fig1e(quickCfg())
	for _, r := range fig.Rows {
		if r.Values["Baseline"] <= r.Values["STGSelect"] {
			t.Errorf("%s: baseline (%v) should exceed STGSelect (%v)",
				r.X, r.Values["Baseline"], r.Values["STGSelect"])
		}
	}
}

func TestQualityShape(t *testing.T) {
	if testing.Short() {
		t.Skip("quality sweep")
	}
	pts := Quality(quickCfg())
	anyManual := false
	for _, pt := range pts {
		if !pt.ManualOK {
			continue
		}
		anyManual = true
		if !pt.ArrangeOK {
			t.Errorf("p=%d: STGArrange failed though PCArrange succeeded", pt.P)
			continue
		}
		// Figure 1(g): the automatic planner needs at most the manual k_h.
		if pt.ArrangeK > pt.ManualK {
			t.Errorf("p=%d: STGArrange k=%d exceeds PCArrange k_h=%d", pt.P, pt.ArrangeK, pt.ManualK)
		}
		// Figure 1(h): and is no farther socially.
		if pt.ArrangeDistance > pt.ManualDistance {
			t.Errorf("p=%d: STGArrange distance %v exceeds PCArrange %v",
				pt.P, pt.ArrangeDistance, pt.ManualDistance)
		}
	}
	if !anyManual {
		t.Error("PCArrange never succeeded; dataset too hostile")
	}
}

// TestAllFiguresRun smoke-tests every runner end to end in quick mode.
func TestAllFiguresRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness sweep")
	}
	figs := All(quickCfg())
	if len(figs) != 8 {
		t.Fatalf("All returned %d figures, want 8", len(figs))
	}
	for _, f := range figs {
		if len(f.Rows) == 0 {
			t.Errorf("figure %s has no rows", f.ID)
		}
		if out := f.String(); len(out) == 0 {
			t.Errorf("figure %s renders empty", f.ID)
		}
		if out := f.Chart(70); len(out) == 0 {
			t.Errorf("figure %s chart renders empty", f.ID)
		}
	}
}

func TestFigureString(t *testing.T) {
	fig := Figure{
		ID: "x", Title: "test", XLabel: "p", Unit: "ns",
		Series: []string{"A"},
		Rows:   []Row{{X: "p=3", Values: map[string]float64{"A": 1500}}},
	}
	out := fig.String()
	if !strings.Contains(out, "Figure x") || !strings.Contains(out, "1.5µs") {
		t.Errorf("render wrong:\n%s", out)
	}
}

func TestChartRendering(t *testing.T) {
	fig := Figure{
		ID: "x", Title: "chart test", XLabel: "p", Unit: "ns",
		Series: []string{"A", "B"},
		Rows: []Row{
			{X: "p=3", Values: map[string]float64{"A": 1000, "B": 1000000}},
			{X: "p=4", Values: map[string]float64{"A": 2000}},
		},
	}
	out := fig.Chart(60)
	if !strings.Contains(out, "log scale") {
		t.Error("wide-range timing chart should use log scale")
	}
	if !strings.Contains(out, "infeasible") {
		t.Error("missing series value should render as infeasible")
	}
	if !strings.Contains(out, "1.0µs") || !strings.Contains(out, "1.00ms") {
		t.Errorf("chart labels wrong:\n%s", out)
	}
	// Tiny width is clamped, empty figures degrade gracefully.
	if got := (Figure{ID: "y", Title: "empty"}).Chart(5); !strings.Contains(got, "no data") {
		t.Errorf("empty chart = %q", got)
	}
	// Linear scale for quality figures.
	q := Figure{
		ID: "q", Title: "quality", Series: []string{"A"},
		Rows: []Row{{X: "p=3", Values: map[string]float64{"A": 5}}},
	}
	if strings.Contains(q.Chart(60), "log scale") {
		t.Error("quality chart must be linear")
	}
}

func TestByID(t *testing.T) {
	for _, id := range []string{"1a", "1b", "1c", "1d", "1e", "1f", "1g", "1h"} {
		if _, ok := ByID(id); !ok {
			t.Errorf("missing figure %s", id)
		}
	}
	if _, ok := ByID("9z"); ok {
		t.Error("unknown id should not resolve")
	}
}

func TestFormatDuration(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{500 * time.Nanosecond, "500ns"},
		{1500 * time.Nanosecond, "1.5µs"},
		{2500 * time.Microsecond, "2.50ms"},
		{3 * time.Second, "3.00s"},
	}
	for _, c := range cases {
		if got := formatDuration(c.d); got != c.want {
			t.Errorf("formatDuration(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestPickInitiators(t *testing.T) {
	d, _ := RealSGQ(42)
	one := pickInitiators(d, Config{})
	if len(one) != 1 {
		t.Fatalf("default initiators = %d, want 1", len(one))
	}
	three := pickInitiators(d, Config{Initiators: 3})
	if len(three) != 3 {
		t.Fatalf("initiators = %d, want 3", len(three))
	}
	seen := map[int]bool{}
	for _, q := range three {
		if seen[q] {
			t.Error("duplicate initiator")
		}
		seen[q] = true
		deg := d.Graph.Degree(q)
		if deg < 15 || deg > 45 {
			t.Errorf("initiator %d degree %d far from the benchmark target", q, deg)
		}
	}
	// Deterministic.
	again := pickInitiators(d, Config{Initiators: 3})
	for i := range three {
		if three[i] != again[i] {
			t.Error("pickInitiators not deterministic")
		}
	}
	// Clamped to the population.
	all := pickInitiators(d, Config{Initiators: 10_000})
	if len(all) != d.Graph.NumVertices() {
		t.Errorf("oversized request returned %d", len(all))
	}
}

func TestMedianOver(t *testing.T) {
	calls := map[int]int{}
	v := medianOver([]int{1, 2, 3}, 2, func(q int) bool {
		calls[q]++
		return true
	})
	if v < 0 {
		t.Error("negative median")
	}
	for q, c := range calls {
		if c != 2 {
			t.Errorf("initiator %d ran %d times, want 2", q, c)
		}
	}
}

func TestMedianTime(t *testing.T) {
	n := 0
	v := medianTime(3, func() bool { n++; return true })
	if n != 3 || v < 0 {
		t.Errorf("medianTime ran %d times, value %v", n, v)
	}
	// trials < 1 clamps to 1.
	n = 0
	medianTime(0, func() bool { n++; return true })
	if n != 1 {
		t.Errorf("clamped trials ran %d times", n)
	}
}
