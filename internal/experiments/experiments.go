// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5, Figure 1(a)–(h)). Each runner returns a Figure
// whose rows mirror the series the paper plots; cmd/stgqexp prints them and
// bench_test.go measures the same workloads under testing.B.
//
// Absolute numbers differ from the paper's 2008-era IBM x3650 — what must
// hold is the shape: who wins, by how much, and how the gap moves with each
// parameter. EXPERIMENTS.md records paper-vs-measured for every figure.
package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/coordinate"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ipmodel"
	"repro/internal/socialgraph"
)

// Config controls dataset seeds and sweep sizes.
type Config struct {
	// Seed drives every dataset generation.
	Seed int64
	// Trials is the number of timing repetitions; the median is reported.
	Trials int
	// Initiators averages each point over this many distinct initiators
	// with ego networks near the benchmark scale (0 or 1 = the single
	// default initiator). The SGQ sweeps (Figures 1(a)–(c)) honor it.
	Initiators int
	// Quick trims the sweeps (used by -short tests).
	Quick bool
}

// DefaultConfig mirrors the paper's setup.
func DefaultConfig() Config { return Config{Seed: 42, Trials: 3} }

// pickInitiators returns cfg.Initiators distinct vertices whose degrees are
// closest to the benchmark target, deterministically.
func pickInitiators(d *dataset.Dataset, cfg Config) []int {
	count := cfg.Initiators
	if count < 1 {
		count = 1
	}
	type vd struct{ v, diff int }
	n := d.Graph.NumVertices()
	all := make([]vd, n)
	for v := 0; v < n; v++ {
		diff := d.Graph.Degree(v) - 30
		if diff < 0 {
			diff = -diff
		}
		all[v] = vd{v, diff}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].diff != all[j].diff {
			return all[i].diff < all[j].diff
		}
		return all[i].v < all[j].v
	})
	if count > n {
		count = n
	}
	out := make([]int, count)
	for i := 0; i < count; i++ {
		out[i] = all[i].v
	}
	return out
}

// medianOver runs fn for every initiator and returns the median of the
// per-initiator medians.
func medianOver(initiators []int, trials int, fn func(q int) bool) float64 {
	vals := make([]float64, 0, len(initiators))
	for _, q := range initiators {
		vals = append(vals, medianTime(trials, func() bool { return fn(q) }))
	}
	sort.Float64s(vals)
	return vals[len(vals)/2]
}

// Figure is one reproduced figure: a set of series sampled over an x sweep.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	Unit   string // "ns", "ms", or "" for quality metrics
	Series []string
	Rows   []Row
}

// Row is one x position of a figure.
type Row struct {
	X      string
	Values map[string]float64
}

// String renders the figure as an aligned text table.
func (f Figure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure %s — %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "%-14s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "%20s", s)
	}
	b.WriteByte('\n')
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%-14s", r.X)
		for _, s := range f.Series {
			v, ok := r.Values[s]
			switch {
			case !ok || math.IsNaN(v):
				fmt.Fprintf(&b, "%20s", "—")
			case f.Unit == "ns":
				fmt.Fprintf(&b, "%20s", formatDuration(time.Duration(v)))
			default:
				fmt.Fprintf(&b, "%20.2f", v)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func formatDuration(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// medianTime runs fn trials times and returns the median duration in
// nanoseconds. NaN is returned when fn reports failure (infeasible point).
func medianTime(trials int, fn func() bool) float64 {
	if trials < 1 {
		trials = 1
	}
	times := make([]float64, 0, trials)
	ok := true
	for i := 0; i < trials; i++ {
		t0 := time.Now()
		ok = fn() && ok
		times = append(times, float64(time.Since(t0).Nanoseconds()))
	}
	sort.Float64s(times)
	return times[len(times)/2]
}

// RealSGQ is the shared SGQ benchmark instance: the 194-person dataset with
// 3-day schedules and a busy initiator (~30 direct friends, the paper's
// ego-network scale).
func RealSGQ(seed int64) (*dataset.Dataset, int) {
	d := dataset.Real194(seed, 3)
	return d, d.PickByDegree(30)
}

// RealSTGQ is the shared STGQ instance: 7-day schedules (so large m stays
// plannable on weekends, as discussed in DESIGN.md).
func RealSTGQ(seed int64, days int) (*dataset.Dataset, int) {
	d := dataset.Real194(seed, days)
	return d, d.PickByDegree(30)
}

// Radius extracts the feasible graph, panicking on programmer error (the
// datasets guarantee connectivity).
func Radius(d *dataset.Dataset, q, s int) *socialgraph.RadiusGraph {
	rg, err := d.Graph.ExtractRadiusGraph(q, s)
	if err != nil {
		panic(err)
	}
	return rg
}

// Fig1a — SGQ running time vs p (k=2, s=1): SGSelect vs Baseline vs IP.
func Fig1a(cfg Config) Figure {
	d, _ := RealSGQ(cfg.Seed)
	qs := pickInitiators(d, cfg)
	rgs := make(map[int]*socialgraph.RadiusGraph, len(qs))
	for _, q := range qs {
		rgs[q] = Radius(d, q, 1)
	}
	ps := []int{3, 4, 5, 6, 7, 8, 9, 10, 11}
	if cfg.Quick {
		ps = []int{3, 5, 7}
	}
	fig := Figure{
		ID: "1a", Title: "SGQ running time vs p (k=2, s=1, real-194)",
		XLabel: "p", Unit: "ns",
		Series: []string{"SGSelect", "Baseline", "IP"},
	}
	for _, p := range ps {
		row := Row{X: fmt.Sprintf("p=%d", p), Values: map[string]float64{}}
		row.Values["SGSelect"] = medianOver(qs, cfg.Trials, func(q int) bool {
			_, _, err := core.SGSelect(rgs[q], p, 2, nil, core.DefaultOptions())
			return err == nil
		})
		row.Values["Baseline"] = medianOver(qs, cfg.Trials, func(q int) bool {
			_, err := baseline.SGQ(rgs[q], p, 2, nil)
			return err == nil
		})
		row.Values["IP"] = medianOver(qs, cfg.Trials, func(q int) bool {
			_, err := ipmodel.SGQReduced(rgs[q], p, 2, ipmodel.SolveOptions{})
			return err == nil
		})
		fig.Rows = append(fig.Rows, row)
	}
	return fig
}

// Fig1b — SGQ running time vs s (p=4, k=2): SGSelect vs Baseline.
func Fig1b(cfg Config) Figure {
	d, _ := RealSGQ(cfg.Seed)
	qs := pickInitiators(d, cfg)
	ss := []int{1, 3, 5}
	if cfg.Quick {
		ss = []int{1, 3}
	}
	fig := Figure{
		ID: "1b", Title: "SGQ running time vs s (p=4, k=2, real-194)",
		XLabel: "s", Unit: "ns",
		Series: []string{"SGSelect", "Baseline"},
	}
	for _, s := range ss {
		rgs := make(map[int]*socialgraph.RadiusGraph, len(qs))
		for _, q := range qs {
			rgs[q] = Radius(d, q, s)
		}
		row := Row{X: fmt.Sprintf("s=%d", s), Values: map[string]float64{}}
		row.Values["SGSelect"] = medianOver(qs, cfg.Trials, func(q int) bool {
			_, _, err := core.SGSelect(rgs[q], 4, 2, nil, core.DefaultOptions())
			return err == nil
		})
		row.Values["Baseline"] = medianOver(qs, cfg.Trials, func(q int) bool {
			_, err := baseline.SGQ(rgs[q], 4, 2, nil)
			return err == nil
		})
		fig.Rows = append(fig.Rows, row)
	}
	return fig
}

// Fig1c — SGQ running time vs k (p=5, s=2): SGSelect vs Baseline.
func Fig1c(cfg Config) Figure {
	d, _ := RealSGQ(cfg.Seed)
	qs := pickInitiators(d, cfg)
	rgs := make(map[int]*socialgraph.RadiusGraph, len(qs))
	for _, q := range qs {
		rgs[q] = Radius(d, q, 2)
	}
	ks := []int{1, 2, 3, 4, 5, 6}
	if cfg.Quick {
		ks = []int{1, 3}
	}
	fig := Figure{
		ID: "1c", Title: "SGQ running time vs k (p=5, s=2, real-194)",
		XLabel: "k", Unit: "ns",
		Series: []string{"SGSelect", "Baseline"},
	}
	for _, k := range ks {
		row := Row{X: fmt.Sprintf("k=%d", k), Values: map[string]float64{}}
		row.Values["SGSelect"] = medianOver(qs, cfg.Trials, func(q int) bool {
			_, _, err := core.SGSelect(rgs[q], 5, k, nil, core.DefaultOptions())
			return err == nil
		})
		row.Values["Baseline"] = medianOver(qs, cfg.Trials, func(q int) bool {
			_, err := baseline.SGQ(rgs[q], 5, k, nil)
			return err == nil
		})
		fig.Rows = append(fig.Rows, row)
	}
	return fig
}

// Fig1dSizes is the network-size sweep of Figure 1(d).
var Fig1dSizes = []int{194, 800, 3200, 12800}

// Fig1dInstance builds one synthetic instance of the Figure 1(d) sweep with
// an initiator of comparable ego-network size across scales.
func Fig1dInstance(n int, seed int64) (*dataset.Dataset, *socialgraph.RadiusGraph) {
	d := dataset.Synthetic(n, seed, 1)
	q := d.PickByDegree(30)
	return d, Radius(d, q, 1)
}

// Fig1d — SGQ running time vs network size (p=5, k=3, s=1): SGSelect vs
// Baseline vs IP on the synthetic coauthorship-style networks.
func Fig1d(cfg Config) Figure {
	sizes := Fig1dSizes
	if cfg.Quick {
		sizes = []int{194, 800}
	}
	fig := Figure{
		ID: "1d", Title: "SGQ running time vs network size (p=5, k=3, s=1, synthetic)",
		XLabel: "n", Unit: "ns",
		Series: []string{"SGSelect", "Baseline", "IP"},
	}
	for _, n := range sizes {
		_, rg := Fig1dInstance(n, cfg.Seed)
		row := Row{X: fmt.Sprintf("n=%d", n), Values: map[string]float64{}}
		row.Values["SGSelect"] = medianTime(cfg.Trials, func() bool {
			_, _, err := core.SGSelect(rg, 5, 3, nil, core.DefaultOptions())
			return err == nil
		})
		row.Values["Baseline"] = medianTime(cfg.Trials, func() bool {
			_, err := baseline.SGQ(rg, 5, 3, nil)
			return err == nil
		})
		row.Values["IP"] = medianTime(cfg.Trials, func() bool {
			_, err := ipmodel.SGQReduced(rg, 5, 3, ipmodel.SolveOptions{})
			return err == nil
		})
		fig.Rows = append(fig.Rows, row)
	}
	return fig
}

// Fig1e — STGQ running time vs m (p=5, s=2, k=2, 7-day schedules):
// STGSelect vs the sequential baseline (exhaustive SGQ per activity
// period), plus the SGSelect-backed sequential variant as a pivot ablation.
func Fig1e(cfg Config) Figure {
	d, q := RealSTGQ(cfg.Seed, 7)
	rg := Radius(d, q, 2)
	calUser := dataset.CalUsers(rg)
	ms := []int{2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 24}
	if cfg.Quick {
		ms = []int{2, 8, 24}
	}
	fig := Figure{
		ID: "1e", Title: "STGQ running time vs m (p=5, s=2, k=2, real-194, 7 days)",
		XLabel: "m (0.5 hour)", Unit: "ns",
		Series: []string{"STGSelect", "Baseline", "Seq-SGSelect"},
	}
	for _, m := range ms {
		row := Row{X: fmt.Sprintf("m=%d", m), Values: map[string]float64{}}
		row.Values["STGSelect"] = medianTime(cfg.Trials, func() bool {
			_, _, err := core.STGSelect(rg, d.Cal, calUser, 5, 2, m, core.DefaultOptions())
			return err == nil
		})
		row.Values["Baseline"] = medianTime(cfg.Trials, func() bool {
			_, err := baseline.STGQExhaustive(rg, d.Cal, calUser, 5, 2, m)
			return err == nil
		})
		row.Values["Seq-SGSelect"] = medianTime(cfg.Trials, func() bool {
			_, err := baseline.STGQ(rg, d.Cal, calUser, 5, 2, m, core.DefaultOptions())
			return err == nil
		})
		fig.Rows = append(fig.Rows, row)
	}
	return fig
}

// Fig1f — STGQ running time vs schedule length in days (p=5, s=2, k=2,
// m=4): STGSelect vs the sequential baseline.
func Fig1f(cfg Config) Figure {
	days := []int{1, 2, 3, 4, 5, 6, 7}
	if cfg.Quick {
		days = []int{1, 3}
	}
	fig := Figure{
		ID: "1f", Title: "STGQ running time vs schedule length (p=5, s=2, k=2, m=4, real-194)",
		XLabel: "days", Unit: "ns",
		Series: []string{"STGSelect", "Baseline", "Seq-SGSelect"},
	}
	for _, dd := range days {
		d, q := RealSTGQ(cfg.Seed, dd)
		rg := Radius(d, q, 2)
		calUser := dataset.CalUsers(rg)
		row := Row{X: fmt.Sprintf("days=%d", dd), Values: map[string]float64{}}
		row.Values["STGSelect"] = medianTime(cfg.Trials, func() bool {
			_, _, err := core.STGSelect(rg, d.Cal, calUser, 5, 2, 4, core.DefaultOptions())
			return err == nil
		})
		row.Values["Baseline"] = medianTime(cfg.Trials, func() bool {
			_, err := baseline.STGQExhaustive(rg, d.Cal, calUser, 5, 2, 4)
			return err == nil
		})
		row.Values["Seq-SGSelect"] = medianTime(cfg.Trials, func() bool {
			_, err := baseline.STGQ(rg, d.Cal, calUser, 5, 2, 4, core.DefaultOptions())
			return err == nil
		})
		fig.Rows = append(fig.Rows, row)
	}
	return fig
}

// QualityPoint is one p value of the Figure 1(g)/(h) comparison.
type QualityPoint struct {
	P int
	// PCArrange outcome.
	ManualK        int
	ManualDistance float64
	ManualOK       bool
	// STGArrange outcome.
	ArrangeK        int
	ArrangeDistance float64
	ArrangeOK       bool
}

// Quality runs the PCArrange vs STGArrange comparison (s=2, m=4) over the p
// sweep shared by Figures 1(g) and 1(h). The horizon is a single (busy)
// weekday: manual coordination only degrades when schedules actually
// conflict, and over a whole week the closest friends almost always share
// some two-hour window.
func Quality(cfg Config) []QualityPoint {
	d, q := RealSTGQ(cfg.Seed, 1)
	rg := Radius(d, q, 2)
	calUser := dataset.CalUsers(rg)
	ps := []int{3, 4, 5, 6, 7, 8, 9, 10, 11}
	if cfg.Quick {
		ps = []int{3, 5, 7}
	}
	var out []QualityPoint
	for _, p := range ps {
		pt := QualityPoint{P: p}
		pc, err := coordinate.PCArrange(rg, d.Cal, calUser, p, 4)
		if err == nil {
			pt.ManualOK = true
			pt.ManualK = pc.ObservedK
			pt.ManualDistance = pc.TotalDistance
			res, err2 := coordinate.STGArrange(rg, d.Cal, calUser, p, 4, pc.TotalDistance, p-1, core.DefaultOptions())
			if err2 == nil {
				pt.ArrangeOK = true
				pt.ArrangeK = res.K
				pt.ArrangeDistance = res.Answer.TotalDistance
			}
		}
		out = append(out, pt)
	}
	return out
}

// Fig1g formats the Quality sweep as the k comparison of Figure 1(g).
func Fig1g(cfg Config) Figure {
	fig := Figure{
		ID: "1g", Title: "solution quality: k vs p (s=2, m=4, real-194)",
		XLabel: "p",
		Series: []string{"STGArrange k", "PCArrange k_h"},
	}
	for _, pt := range Quality(cfg) {
		row := Row{X: fmt.Sprintf("p=%d", pt.P), Values: map[string]float64{}}
		if pt.ArrangeOK {
			row.Values["STGArrange k"] = float64(pt.ArrangeK)
		}
		if pt.ManualOK {
			row.Values["PCArrange k_h"] = float64(pt.ManualK)
		}
		fig.Rows = append(fig.Rows, row)
	}
	return fig
}

// Fig1h formats the Quality sweep as the total-distance comparison of
// Figure 1(h).
func Fig1h(cfg Config) Figure {
	fig := Figure{
		ID: "1h", Title: "solution quality: total distance vs p (s=2, m=4, real-194)",
		XLabel: "p",
		Series: []string{"STGArrange", "PCArrange"},
	}
	for _, pt := range Quality(cfg) {
		row := Row{X: fmt.Sprintf("p=%d", pt.P), Values: map[string]float64{}}
		if pt.ArrangeOK {
			row.Values["STGArrange"] = pt.ArrangeDistance
		}
		if pt.ManualOK {
			row.Values["PCArrange"] = pt.ManualDistance
		}
		fig.Rows = append(fig.Rows, row)
	}
	return fig
}

// All runs every figure in order.
func All(cfg Config) []Figure {
	return []Figure{
		Fig1a(cfg), Fig1b(cfg), Fig1c(cfg), Fig1d(cfg),
		Fig1e(cfg), Fig1f(cfg), Fig1g(cfg), Fig1h(cfg),
	}
}

// ByID returns the runner for one figure id ("1a".."1h").
func ByID(id string) (func(Config) Figure, bool) {
	m := map[string]func(Config) Figure{
		"1a": Fig1a, "1b": Fig1b, "1c": Fig1c, "1d": Fig1d,
		"1e": Fig1e, "1f": Fig1f, "1g": Fig1g, "1h": Fig1h,
	}
	f, ok := m[id]
	return f, ok
}
