package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// Chart renders the figure as an ASCII bar chart, one row group per x
// value, one bar per series. Timing figures use a log10 scale (the paper
// plots Figures 1(a)–(d) on log axes); quality figures use a linear scale.
func (f Figure) Chart(width int) string {
	if width < 30 {
		width = 30
	}
	barWidth := width - 24

	// Collect the value range.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, r := range f.Rows {
		for _, s := range f.Series {
			v, ok := r.Values[s]
			if !ok || math.IsNaN(v) || v <= 0 {
				continue
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if math.IsInf(lo, 1) {
		return fmt.Sprintf("Figure %s — %s\n(no data)\n", f.ID, f.Title)
	}

	logScale := f.Unit == "ns" && hi/lo > 50
	scale := func(v float64) float64 {
		if logScale {
			if v <= 0 {
				return 0
			}
			span := math.Log10(hi) - math.Log10(lo)
			if span <= 0 {
				return 1
			}
			return (math.Log10(v) - math.Log10(lo)) / span
		}
		if hi <= 0 {
			return 0
		}
		return v / hi
	}

	glyphs := []byte{'#', '=', '-', '~'}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure %s — %s", f.ID, f.Title)
	if logScale {
		b.WriteString(" (log scale)")
	}
	b.WriteByte('\n')
	for i, s := range f.Series {
		fmt.Fprintf(&b, "  %c %s\n", glyphs[i%len(glyphs)], s)
	}
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%-10s\n", r.X)
		for i, s := range f.Series {
			v, ok := r.Values[s]
			if !ok || math.IsNaN(v) {
				fmt.Fprintf(&b, "  %c %-*s (infeasible)\n", glyphs[i%len(glyphs)], barWidth, "")
				continue
			}
			n := int(scale(v)*float64(barWidth-1)) + 1
			if n > barWidth {
				n = barWidth
			}
			bar := strings.Repeat(string(glyphs[i%len(glyphs)]), n)
			label := fmt.Sprintf("%.4g", v)
			if f.Unit == "ns" {
				label = formatDuration(time.Duration(v))
			}
			fmt.Fprintf(&b, "  %-*s %s\n", barWidth, bar, label)
		}
	}
	return b.String()
}
