package stgq_test

import (
	"fmt"

	stgq "repro"
)

// buildExample constructs a small study group with evening availability.
func buildExample() (*stgq.Planner, map[string]stgq.PersonID) {
	pl := stgq.NewPlanner(stgq.SlotsPerDay)
	ids := map[string]stgq.PersonID{}
	for _, n := range []string{"ana", "ben", "chloe", "dinah"} {
		ids[n] = pl.MustAddPerson(n)
	}
	pl.Connect(ids["ana"], ids["ben"], 4)     //nolint:errcheck
	pl.Connect(ids["ana"], ids["chloe"], 6)   //nolint:errcheck
	pl.Connect(ids["ana"], ids["dinah"], 9)   //nolint:errcheck
	pl.Connect(ids["ben"], ids["chloe"], 3)   //nolint:errcheck
	pl.Connect(ids["chloe"], ids["dinah"], 5) //nolint:errcheck
	for _, id := range ids {
		pl.SetAvailable(id, 36, 44) //nolint:errcheck
	}
	pl.SetBusy(ids["dinah"], 36, 40) //nolint:errcheck
	return pl, ids
}

func ExamplePlanner_FindGroup() {
	pl, ids := buildExample()
	res, err := pl.FindGroup(stgq.SGQuery{
		Initiator: ids["ana"],
		P:         3, // three people including ana
		S:         1, // direct friends only
		K:         0, // everyone must know everyone
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, m := range res.Members {
		fmt.Printf("%s (distance %g)\n", m.Name, m.Distance)
	}
	fmt.Println("total:", res.TotalDistance)
	// Output:
	// ana (distance 0)
	// ben (distance 4)
	// chloe (distance 6)
	// total: 10
}

func ExamplePlanner_PlanActivity() {
	pl, ids := buildExample()
	plan, err := pl.PlanActivity(stgq.STGQuery{
		SGQuery: stgq.SGQuery{Initiator: ids["ana"], P: 3, S: 1, K: 0},
		M:       4, // two hours of half-hour slots
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("when:", plan.Window.Format())
	fmt.Println("distance:", plan.TotalDistance)
	// Output:
	// when: day1 18:00 – day1 21:30
	// distance: 10
}

func ExamplePlanner_PlanManually() {
	pl, ids := buildExample()
	manual, err := pl.PlanManually(stgq.STGQuery{
		SGQuery: stgq.SGQuery{Initiator: ids["ana"], P: 3, S: 1},
		M:       4,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("distance %g with %d stranger(s) per attendee at most\n",
		manual.TotalDistance, manual.ObservedK)
	// Output:
	// distance 10 with 0 stranger(s) per attendee at most
}

func ExamplePlanner_SetSchedulePolicy() {
	pl, ids := buildExample()
	// ben stops sharing his calendar with anyone.
	pl.SetSchedulePolicy(ids["ben"], stgq.ShareNone) //nolint:errcheck
	plan, err := pl.PlanActivity(stgq.STGQuery{
		SGQuery: stgq.SGQuery{Initiator: ids["ana"], P: 3, S: 1, K: 1},
		M:       4,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, m := range plan.Members {
		fmt.Println(m.Name)
	}
	// Output:
	// ana
	// chloe
	// dinah
}
