package stgq_test

import (
	"strings"
	"testing"

	stgq "repro"
)

func TestAvailabilityGrid(t *testing.T) {
	pl := stgq.NewPlanner(48)
	a := pl.MustAddPerson("ana")
	b := pl.MustAddPerson("ben")
	if err := pl.SetAvailable(a, 36, 44); err != nil {
		t.Fatal(err)
	}
	if err := pl.SetAvailable(b, 38, 42); err != nil {
		t.Fatal(err)
	}
	grid := pl.AvailabilityGrid([]stgq.PersonID{a, b}, 36, 44)
	if grid == "" {
		t.Fatal("empty grid")
	}
	lines := strings.Split(strings.TrimRight(grid, "\n"), "\n")
	if len(lines) != 3 { // header + 2 people
		t.Fatalf("grid has %d lines:\n%s", len(lines), grid)
	}
	if !strings.Contains(lines[0], "18:00") {
		t.Errorf("header missing hour mark: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "ana") || !strings.HasPrefix(lines[2], "ben") {
		t.Errorf("rows mislabeled:\n%s", grid)
	}
	// ana free across the whole range, ben busy at the edges.
	if strings.Count(lines[1], "█") != 8 {
		t.Errorf("ana should have 8 free slots: %q", lines[1])
	}
	if strings.Count(lines[2], "█") != 4 || strings.Count(lines[2], "·") != 4 {
		t.Errorf("ben should have 4 free + 4 busy: %q", lines[2])
	}
}

func TestAvailabilityGridEdges(t *testing.T) {
	pl := stgq.NewPlanner(10)
	a := pl.MustAddPerson("a")
	if pl.AvailabilityGrid(nil, 0, 5) != "" {
		t.Error("no people should render empty")
	}
	if pl.AvailabilityGrid([]stgq.PersonID{a}, 5, 5) != "" {
		t.Error("empty range should render empty")
	}
	// Out-of-range bounds clamp.
	grid := pl.AvailabilityGrid([]stgq.PersonID{a, stgq.PersonID(99)}, -3, 99)
	lines := strings.Split(strings.TrimRight(grid, "\n"), "\n")
	if len(lines) != 2 { // header + the one valid person
		t.Errorf("clamped grid lines = %d:\n%s", len(lines), grid)
	}
}

func TestGridForPlan(t *testing.T) {
	pl, ids := examplePlanner(t)
	plan, err := pl.PlanActivity(stgq.STGQuery{
		SGQuery: stgq.SGQuery{Initiator: ids["v7"], P: 4, S: 1, K: 1},
		M:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	grid := pl.GridForPlan(plan, 1)
	if grid == "" {
		t.Fatal("empty plan grid")
	}
	for _, m := range plan.Members {
		if !strings.Contains(grid, m.Name) {
			t.Errorf("grid missing member %s:\n%s", m.Name, grid)
		}
	}
	if pl.GridForPlan(nil, 1) != "" {
		t.Error("nil plan should render empty")
	}
}
