package stgq

import (
	"fmt"
	"strings"
)

// AvailabilityGrid renders the availability of the given people over the
// slot range [from, to) as a text grid — one row per person, '█' for free,
// '·' for busy — with a header marking the hours. Planners print this under
// a proposed activity so humans can sanity-check the window at a glance.
//
//	        18:00       20:00       22:00
//	ana     ████████████████
//	ben     ····████████████
//
// Invalid people or an empty range yield an empty string.
func (pl *Planner) AvailabilityGrid(people []PersonID, from, to int) string {
	if from < 0 {
		from = 0
	}
	if to > pl.horizon {
		to = pl.horizon
	}
	if from >= to || len(people) == 0 {
		return ""
	}
	pl.mu.Lock()
	cal := pl.calendarLocked()
	pl.mu.Unlock()

	nameW := 8
	for _, p := range people {
		if n := len(pl.displayName(p)); n+2 > nameW {
			nameW = n + 2
		}
	}

	var b strings.Builder
	// Header: mark every full hour (even slot index within the day).
	b.WriteString(strings.Repeat(" ", nameW))
	col := 0
	for s := from; s < to; s++ {
		if s%2 == 0 && s%SlotsPerDay >= 0 && (s-from)%4 == 0 {
			label := fmt.Sprintf("%02d:%02d", (s%SlotsPerDay)/2, (s%2)*30)
			if col+len(label) <= to-from {
				b.WriteString(label)
				s += len(label) - 1
				col += len(label)
				continue
			}
		}
		b.WriteByte(' ')
		col++
	}
	b.WriteByte('\n')

	for _, p := range people {
		if int(p) < 0 || int(p) >= cal.Users() {
			continue
		}
		fmt.Fprintf(&b, "%-*s", nameW, pl.displayName(p))
		for s := from; s < to; s++ {
			if cal.Available(int(p), s) {
				b.WriteRune('█')
			} else {
				b.WriteRune('·')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func (pl *Planner) displayName(p PersonID) string {
	if n := pl.Name(p); n != "" {
		return n
	}
	return fmt.Sprintf("#%d", int(p))
}

// GridForPlan renders the availability of a plan's members around its
// window, including context slots on both sides.
func (pl *Planner) GridForPlan(plan *PlanResult, context int) string {
	if plan == nil {
		return ""
	}
	people := make([]PersonID, len(plan.Members))
	for i, m := range plan.Members {
		people[i] = m.ID
	}
	return pl.AvailabilityGrid(people, plan.Window.Start-context, plan.Window.End+context)
}
