package stgq

import (
	"errors"
	"fmt"

	"repro/internal/coordinate"
	"repro/internal/core"
	"repro/internal/schedule"
)

// Re-exported sentinel errors. Use errors.Is to test results.
var (
	// ErrNoFeasibleGroup: no group satisfies the query constraints.
	ErrNoFeasibleGroup = core.ErrNoFeasibleGroup
	// ErrBadQuery: out-of-range query parameters.
	ErrBadQuery = core.ErrBadParams
	// ErrPersonNotFound: unknown PersonID or name.
	ErrPersonNotFound = errors.New("stgq: person not found")
	// ErrNotFriends: Disconnect of a friendship that does not exist.
	ErrNotFriends = errors.New("stgq: not friends")
	// ErrCannotCoordinate: the manual-coordination simulation failed to
	// assemble a group.
	ErrCannotCoordinate = coordinate.ErrCannotCoordinate
)

// Algorithm selects the query engine.
type Algorithm int

const (
	// AlgDefault uses the paper's exact algorithms SGSelect / STGSelect.
	AlgDefault Algorithm = iota
	// AlgBaseline uses exhaustive enumeration (per activity period for
	// STGQ). Exact but slow; the comparison series of Figures 1(a)–1(f).
	AlgBaseline
	// AlgIP solves the Appendix-D integer program with the built-in
	// branch-and-bound MIP solver. Exact but slowest; the "IP" series of
	// Figures 1(a) and 1(d).
	AlgIP
)

func (a Algorithm) String() string {
	switch a {
	case AlgDefault:
		return "SGSelect/STGSelect"
	case AlgBaseline:
		return "Baseline"
	case AlgIP:
		return "IP"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Options exposes the search tuning knobs of the core engine (θ/φ of the
// access-ordering conditions and the ablation switches). The zero value
// means "paper defaults".
type Options = core.Options

// DefaultOptions returns the configuration used in the paper's experiments.
func DefaultOptions() Options { return core.DefaultOptions() }

// Stats reports search effort; see the core package for field docs.
type Stats = core.Stats

// SGQuery is a social group query SGQ(p, s, k).
type SGQuery struct {
	// Initiator is the person planning the activity (always a member of the
	// answer group).
	Initiator PersonID
	// P is the activity size: the number of attendees including the
	// initiator.
	P int
	// S is the social radius constraint: candidates lie within S edges of
	// the initiator.
	S int
	// K is the acquaintance constraint: each attendee may be unacquainted
	// with at most K other attendees (0 = the group must be a clique).
	K int
	// Algorithm selects the engine (default: SGSelect).
	Algorithm Algorithm
	// Options tunes the search; nil means paper defaults.
	Options *Options
}

func (q SGQuery) options() core.Options {
	if q.Options != nil {
		return *q.Options
	}
	return core.DefaultOptions()
}

// STGQuery is a social-temporal group query STGQ(p, s, k, m).
type STGQuery struct {
	SGQuery
	// M is the activity length in consecutive time slots.
	M int
	// Parallel, when > 1, searches pivot time slots on that many worker
	// goroutines sharing the incumbent bound (AlgDefault only). The answer
	// distance is identical to the sequential search.
	Parallel int
}

// Member is one attendee in an answer.
type Member struct {
	ID PersonID
	// Name is the display name ("" when unnamed).
	Name string
	// Distance is the social distance to the initiator along the best path
	// with at most S edges (0 for the initiator).
	Distance float64
}

func (m Member) String() string {
	if m.Name != "" {
		return fmt.Sprintf("%s(d=%g)", m.Name, m.Distance)
	}
	return fmt.Sprintf("#%d(d=%g)", int(m.ID), m.Distance)
}

// GroupResult is the answer to an SGQuery.
type GroupResult struct {
	// Members lists the attendees (initiator included) in ascending social
	// distance.
	Members       []Member
	TotalDistance float64
	// Stats reports search effort (zero for non-default algorithms).
	Stats Stats
}

// TimeWindow is a half-open slot range [Start, End).
type TimeWindow struct {
	Start, End int
}

// Len returns the window length in slots.
func (w TimeWindow) Len() int { return w.End - w.Start }

// Format renders the window as human-readable day/time bounds assuming
// half-hour slots.
func (w TimeWindow) Format() string {
	if w.Len() <= 0 {
		return "(empty)"
	}
	return fmt.Sprintf("%s – %s", schedule.FormatSlot(w.Start), schedule.FormatSlot(w.End-1))
}

// PlanResult is the answer to an STGQuery: the optimal group plus the
// maximal common availability window (Len() ≥ M; any M-slot sub-window is a
// valid activity period).
type PlanResult struct {
	GroupResult
	Window TimeWindow
	// PivotSlot is the pivot time slot (Lemma 4) under which the optimum
	// was found; -1 when not applicable.
	PivotSlot int
}

// ManualPlan is the outcome of the PCArrange simulation.
type ManualPlan struct {
	Members       []Member
	TotalDistance float64
	// Window is the chosen M-slot activity period.
	Window TimeWindow
	// ObservedK is k_h: the largest number of unacquainted co-attendees any
	// member of the manually assembled group has.
	ObservedK int
}
