package stgq

import (
	"context"
	"fmt"

	"repro/internal/schedule"
)

// SharePolicy controls who may read a person's availability when answering
// temporal queries. The paper's footnote 1 sketches exactly this: "any
// friend can initiate an STGQ, and the query processing system can look up
// the available time of the user, just like the friend making a call to ask
// the available time. Different privacy policies ... can be set for
// different friends ... or even not answering."
//
// A person whose schedule is invisible to the initiator behaves as if they
// never answered the phone: they cannot be scheduled, so PlanActivity,
// PlanManually, and PlanWithSmallestK treat them as fully busy. FindGroup
// (SGQ) involves no schedules and is unaffected.
type SharePolicy int

const (
	// ShareAll (default): anyone on the social network may read the
	// schedule.
	ShareAll SharePolicy = iota
	// ShareFriends: only direct friends (1 edge away) may read it.
	ShareFriends
	// ShareNone: nobody may read it; the person can never be auto-invited
	// to a timed activity by someone else.
	ShareNone
)

func (p SharePolicy) String() string {
	switch p {
	case ShareAll:
		return "all"
	case ShareFriends:
		return "friends"
	case ShareNone:
		return "none"
	}
	return fmt.Sprintf("SharePolicy(%d)", int(p))
}

// ParseSharePolicy converts a policy's String form back to the policy.
func ParseSharePolicy(s string) (SharePolicy, error) {
	switch s {
	case "", "all":
		return ShareAll, nil
	case "friends":
		return ShareFriends, nil
	case "none":
		return ShareNone, nil
	}
	return 0, fmt.Errorf("%w: unknown policy %q", ErrBadQuery, s)
}

// SetSchedulePolicy sets who may read person p's availability. The default
// for every person is ShareAll. On a durable planner the change is
// journaled (MutSetPolicy) like every other mutation, so policies survive
// restarts and replicate to followers.
func (pl *Planner) SetSchedulePolicy(p PersonID, policy SharePolicy) error {
	return pl.SetSchedulePolicyCtx(context.Background(), p, policy)
}

// SetSchedulePolicyCtx is SetSchedulePolicy with a caller context for the
// mutation hook.
func (pl *Planner) SetSchedulePolicyCtx(ctx context.Context, p PersonID, policy SharePolicy) error {
	pl.mu.Lock()
	if int(p) < 0 || int(p) >= pl.g.NumVertices() {
		pl.mu.Unlock()
		return fmt.Errorf("%w: person %d", ErrPersonNotFound, p)
	}
	if policy < ShareAll || policy > ShareNone {
		pl.mu.Unlock()
		return fmt.Errorf("%w: unknown policy %d", ErrBadQuery, policy)
	}
	if pl.policies == nil {
		pl.policies = make(map[PersonID]SharePolicy)
	}
	if policy == ShareAll {
		delete(pl.policies, p)
	} else {
		pl.policies[p] = policy
	}
	wait := pl.notifyLocked(ctx, Mutation{Op: MutSetPolicy, Person: p, Policy: policy})
	pl.mu.Unlock()
	if wait != nil {
		return wait()
	}
	return nil
}

// SchedulePolicy returns person p's current policy.
func (pl *Planner) SchedulePolicy(p PersonID) SharePolicy {
	pl.mu.RLock()
	defer pl.mu.RUnlock()
	return pl.policies[p]
}

// visibleCalendarLocked returns the calendar as the initiator is allowed to
// see it: rows hidden by privacy policies are blank (always busy). When no
// policies are set the shared calendar is returned directly. The caller
// must hold the write lock, or the read lock with a clean calendar cache;
// the result is immutable.
func (pl *Planner) visibleCalendarLocked(initiator PersonID) *schedule.Calendar {
	base := pl.calendarLocked()
	policies := pl.policies
	if len(policies) == 0 {
		return base
	}
	filtered := schedule.NewCalendar(base.Users(), base.Horizon())
	for u := 0; u < base.Users(); u++ {
		if !pl.scheduleVisible(policies, initiator, PersonID(u)) {
			continue
		}
		row := base.Row(u)
		for s := row.NextSet(0); s != -1; s = row.NextSet(s + 1) {
			filtered.SetAvailable(u, s)
		}
	}
	return filtered
}

// scheduleVisible decides whether viewer may read owner's schedule.
func (pl *Planner) scheduleVisible(policies map[PersonID]SharePolicy, viewer, owner PersonID) bool {
	if viewer == owner {
		return true
	}
	switch policies[owner] {
	case ShareNone:
		return false
	case ShareFriends:
		return pl.g.HasEdge(int(viewer), int(owner))
	default:
		return true
	}
}
