package stgq_test

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"

	stgq "repro"
)

// TestIndexedPlannerMatchesPlainPlanner is the end-to-end half of the
// fast path's differential proof: two planners receive the identical
// seeded random mutation stream — one with the incremental index
// enabled, one without — and after every prefix both answer the same
// battery of queries (FindGroup, PlanActivity, PlanGeoActivity,
// PlanWithSmallestK). Results must be byte-identical under JSON
// encoding: same members, same distances, same windows, same errors.
// Repeat initiators deliberately re-hit the indexed planner's distance
// labels, and interleaved graph edits exercise the invalidation paths;
// any divergence reports the seed and prefix for replay.
func TestIndexedPlannerMatchesPlainPlanner(t *testing.T) {
	for _, seed := range []int64{3, 11, 99, 2024} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			const horizon = 24
			rng := rand.New(rand.NewSource(seed))
			plain := stgq.NewPlanner(horizon)
			fast := stgq.NewPlanner(horizon)
			fast.EnableIndex()

			both := func(op string, f func(pl *stgq.Planner) error) {
				t.Helper()
				e1, e2 := f(plain), f(fast)
				if (e1 == nil) != (e2 == nil) {
					t.Fatalf("seed %d: %s: plain err %v, indexed err %v", seed, op, e1, e2)
				}
			}

			// Seed population: enough structure that queries are often
			// feasible, sparse enough that they sometimes are not.
			n := 12 + rng.Intn(8)
			for i := 0; i < n; i++ {
				name := fmt.Sprintf("p%d", i)
				both("AddPerson", func(pl *stgq.Planner) error {
					_, err := pl.AddPerson(name)
					return err
				})
			}

			for step := 0; step < 120; step++ {
				a := stgq.PersonID(rng.Intn(n))
				b := stgq.PersonID(rng.Intn(n))
				switch rng.Intn(12) {
				case 0, 1, 2:
					w := float64(1 + rng.Intn(9))
					both("Connect", func(pl *stgq.Planner) error { return pl.Connect(a, b, w) })
				case 3:
					both("Disconnect", func(pl *stgq.Planner) error { return pl.Disconnect(a, b) })
				case 4, 5, 6, 7:
					from := rng.Intn(horizon)
					to := from + 1 + rng.Intn(horizon-from)
					if rng.Intn(3) == 0 {
						both("SetBusy", func(pl *stgq.Planner) error { return pl.SetBusy(a, from, to) })
					} else {
						both("SetAvailable", func(pl *stgq.Planner) error { return pl.SetAvailable(a, from, to) })
					}
				case 8:
					x, y := float64(rng.Intn(1000)), float64(rng.Intn(1000))
					both("SetLocation", func(pl *stgq.Planner) error { return pl.SetLocation(a, x, y) })
				default:
					// No mutation this step: query back-to-back prefixes so
					// the second query hits a warm label cache.
				}

				// Repeat initiators from a small pool → label-cache hits on
				// the indexed side; parameters vary freely.
				q := stgq.SGQuery{
					Initiator: stgq.PersonID(rng.Intn(4)),
					P:         2 + rng.Intn(3),
					S:         1 + rng.Intn(2),
					K:         rng.Intn(3),
				}
				diffJSON(t, seed, step, "FindGroup",
					func() (any, error) { return plain.FindGroup(q) },
					func() (any, error) { return fast.FindGroup(q) })

				tq := stgq.STGQuery{SGQuery: q, M: 1 + rng.Intn(3)}
				diffJSON(t, seed, step, "PlanActivity",
					func() (any, error) { return plain.PlanActivity(tq) },
					func() (any, error) { return fast.PlanActivity(tq) })

				gq := stgq.GSGQuery{SGQuery: q, M: rng.Intn(3), X: 500, Y: 500, Radius: 400}
				diffJSON(t, seed, step, "PlanGeoActivity",
					func() (any, error) { return plain.PlanGeoActivity(gq) },
					func() (any, error) { return fast.PlanGeoActivity(gq) })

				if step%20 == 19 {
					diffJSON(t, seed, step, "PlanWithSmallestK",
						func() (any, error) {
							k, res, err := plain.PlanWithSmallestK(tq, 100)
							return map[string]any{"k": k, "res": res}, err
						},
						func() (any, error) {
							k, res, err := fast.PlanWithSmallestK(tq, 100)
							return map[string]any{"k": k, "res": res}, err
						})
				}
			}

			if seq, _ := fast.IndexStats(); seq == 0 {
				t.Fatalf("seed %d: indexed planner never advanced its index seq", seed)
			}
		})
	}
}

// diffJSON runs the same query on both planners and requires identical
// outcomes: equal errors, or byte-identical JSON-encoded results.
func diffJSON(t *testing.T, seed int64, step int, op string, plain, fast func() (any, error)) {
	t.Helper()
	pv, pe := plain()
	fv, fe := fast()
	if (pe == nil) != (fe == nil) {
		t.Fatalf("seed %d step %d: %s: plain err %v, indexed err %v", seed, step, op, pe, fe)
	}
	if pe != nil {
		if pe.Error() != fe.Error() {
			t.Fatalf("seed %d step %d: %s: plain err %q, indexed err %q", seed, step, op, pe, fe)
		}
		return
	}
	pj, err := json.Marshal(pv)
	if err != nil {
		t.Fatalf("seed %d step %d: %s: marshal plain: %v", seed, step, op, err)
	}
	fj, err := json.Marshal(fv)
	if err != nil {
		t.Fatalf("seed %d step %d: %s: marshal indexed: %v", seed, step, op, err)
	}
	if string(pj) != string(fj) {
		t.Fatalf("seed %d step %d: %s diverged\nplain:   %s\nindexed: %s", seed, step, op, pj, fj)
	}
}

// TestIndexedPlannerMatchesPlainWithPolicies repeats the differential
// check with privacy policies in play: the planner must withhold the
// availability index whenever any SharePolicy is set (the index tracks
// TRUE availability; the engine must see the masked view), so indexed
// and plain planners must still agree query for query.
func TestIndexedPlannerMatchesPlainWithPolicies(t *testing.T) {
	const horizon = 16
	rng := rand.New(rand.NewSource(77))
	plain := stgq.NewPlanner(horizon)
	fast := stgq.NewPlanner(horizon)
	fast.EnableIndex()

	for _, pl := range []*stgq.Planner{plain, fast} {
		for i := 0; i < 10; i++ {
			pl.MustAddPerson(fmt.Sprintf("p%d", i))
		}
		for i := 0; i < 9; i++ {
			if err := pl.Connect(stgq.PersonID(i), stgq.PersonID(i+1), 1); err != nil {
				t.Fatal(err)
			}
			if err := pl.Connect(stgq.PersonID(i), stgq.PersonID((i+3)%10), 2); err != nil && i+3 != 10 {
				t.Fatal(err)
			}
		}
		for i := 0; i < 10; i++ {
			if err := pl.SetAvailable(stgq.PersonID(i), 0, 8+i%4); err != nil {
				t.Fatal(err)
			}
		}
		if err := pl.SetSchedulePolicy(3, stgq.ShareNone); err != nil {
			t.Fatal(err)
		}
		if err := pl.SetSchedulePolicy(5, stgq.ShareFriends); err != nil {
			t.Fatal(err)
		}
	}

	for step := 0; step < 40; step++ {
		q := stgq.STGQuery{
			SGQuery: stgq.SGQuery{
				Initiator: stgq.PersonID(rng.Intn(10)),
				P:         2 + rng.Intn(3),
				S:         1 + rng.Intn(2),
				K:         rng.Intn(2),
			},
			M: 1 + rng.Intn(3),
		}
		diffJSON(t, 77, step, "PlanActivity(policies)",
			func() (any, error) { return plain.PlanActivity(q) },
			func() (any, error) { return fast.PlanActivity(q) })
	}
}
