// Benchmarks regenerating every figure of the paper's evaluation section
// (Figure 1(a)–(h)) plus ablation benches for each pruning/ordering
// strategy. Run with:
//
//	go test -bench=. -benchmem
//
// Each BenchmarkFig* corresponds to one figure series; sub-benchmarks sweep
// the figure's x axis. Quality figures (1g, 1h) report their metrics via
// b.ReportMetric (k, k_h, and total distances) instead of wall time.
package stgq_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	stgq "repro"
	"repro/internal/baseline"
	"repro/internal/coordinate"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/ipmodel"
	"repro/internal/journal"
	"repro/internal/obsv"
	"repro/internal/socialgraph"
)

const benchSeed = 42

// Shared instances, built once.
var (
	sgOnce sync.Once
	sgData *dataset.Dataset
	sgInit int
	sgRG1  *socialgraph.RadiusGraph // s=1
	sgRG2  *socialgraph.RadiusGraph // s=2

	stOnce   sync.Once
	stData   *dataset.Dataset
	stRG     *socialgraph.RadiusGraph
	stUsers  []int
	stByDays map[int]*dataset.Dataset

	synOnce sync.Once
	synRGs  map[int]*socialgraph.RadiusGraph
)

func sgInstance() {
	sgOnce.Do(func() {
		sgData, sgInit = experiments.RealSGQ(benchSeed)
		sgRG1 = experiments.Radius(sgData, sgInit, 1)
		sgRG2 = experiments.Radius(sgData, sgInit, 2)
	})
}

func stInstance() {
	stOnce.Do(func() {
		var stInit int
		stData, stInit = experiments.RealSTGQ(benchSeed, 7)
		stRG = experiments.Radius(stData, stInit, 2)
		stUsers = dataset.CalUsers(stRG)
		stByDays = map[int]*dataset.Dataset{7: stData}
		for d := 1; d < 7; d++ {
			dd, _ := experiments.RealSTGQ(benchSeed, d)
			stByDays[d] = dd
		}
	})
}

func synInstance() {
	synOnce.Do(func() {
		synRGs = map[int]*socialgraph.RadiusGraph{}
		for _, n := range experiments.Fig1dSizes {
			_, rg := experiments.Fig1dInstance(n, benchSeed)
			synRGs[n] = rg
		}
	})
}

// --- Figure 1(a): SGQ running time vs p (k=2, s=1) ----------------------

var fig1aPs = []int{3, 4, 5, 6, 7, 8, 9, 10, 11}

func BenchmarkFig1aSGSelect(b *testing.B) {
	sgInstance()
	for _, p := range fig1aPs {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.SGSelect(sgRG1, p, 2, nil, core.DefaultOptions()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig1aBaseline(b *testing.B) {
	sgInstance()
	for _, p := range fig1aPs {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := baseline.SGQ(sgRG1, p, 2, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig1aIP(b *testing.B) {
	sgInstance()
	for _, p := range fig1aPs {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ipmodel.SGQReduced(sgRG1, p, 2, ipmodel.SolveOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 1(b): SGQ running time vs s (p=4, k=2) ----------------------

var fig1bSs = []int{1, 3, 5}

func BenchmarkFig1bSGSelect(b *testing.B) {
	sgInstance()
	for _, s := range fig1bSs {
		rg := experiments.Radius(sgData, sgInit, s)
		b.Run(fmt.Sprintf("s=%d", s), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.SGSelect(rg, 4, 2, nil, core.DefaultOptions()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig1bBaseline(b *testing.B) {
	sgInstance()
	for _, s := range fig1bSs {
		rg := experiments.Radius(sgData, sgInit, s)
		b.Run(fmt.Sprintf("s=%d", s), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := baseline.SGQ(rg, 4, 2, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 1(c): SGQ running time vs k (p=5, s=2) ----------------------

var fig1cKs = []int{1, 2, 3, 4, 5, 6}

func BenchmarkFig1cSGSelect(b *testing.B) {
	sgInstance()
	for _, k := range fig1cKs {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.SGSelect(sgRG2, 5, k, nil, core.DefaultOptions()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig1cBaseline(b *testing.B) {
	sgInstance()
	for _, k := range fig1cKs {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := baseline.SGQ(sgRG2, 5, k, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 1(d): SGQ running time vs network size (p=5, k=3, s=1) ------

func BenchmarkFig1dSGSelect(b *testing.B) {
	synInstance()
	for _, n := range experiments.Fig1dSizes {
		rg := synRGs[n]
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.SGSelect(rg, 5, 3, nil, core.DefaultOptions()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig1dBaseline(b *testing.B) {
	synInstance()
	for _, n := range experiments.Fig1dSizes {
		rg := synRGs[n]
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := baseline.SGQ(rg, 5, 3, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig1dIP(b *testing.B) {
	synInstance()
	for _, n := range experiments.Fig1dSizes {
		rg := synRGs[n]
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ipmodel.SGQReduced(rg, 5, 3, ipmodel.SolveOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 1(e): STGQ running time vs m (p=5, s=2, k=2, 7 days) --------

var fig1eMs = []int{2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 24}

func BenchmarkFig1eSTGSelect(b *testing.B) {
	stInstance()
	for _, m := range fig1eMs {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// Infeasibility at the largest m is part of the workload
				// (the search still proves it).
				core.STGSelect(stRG, stByDays[7].Cal, stUsers, 5, 2, m, core.DefaultOptions()) //nolint:errcheck
			}
		})
	}
}

func BenchmarkFig1eBaseline(b *testing.B) {
	stInstance()
	for _, m := range fig1eMs {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				baseline.STGQExhaustive(stRG, stByDays[7].Cal, stUsers, 5, 2, m) //nolint:errcheck
			}
		})
	}
}

// --- Figure 1(f): STGQ running time vs schedule length (m=4) ------------

func BenchmarkFig1fSTGSelect(b *testing.B) {
	stInstance()
	for days := 1; days <= 7; days++ {
		d := stByDays[days]
		rg := experiments.Radius(d, d.PickByDegree(30), 2)
		users := dataset.CalUsers(rg)
		b.Run(fmt.Sprintf("days=%d", days), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.STGSelect(rg, d.Cal, users, 5, 2, 4, core.DefaultOptions()) //nolint:errcheck
			}
		})
	}
}

func BenchmarkFig1fBaseline(b *testing.B) {
	stInstance()
	for days := 1; days <= 7; days++ {
		d := stByDays[days]
		rg := experiments.Radius(d, d.PickByDegree(30), 2)
		users := dataset.CalUsers(rg)
		b.Run(fmt.Sprintf("days=%d", days), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				baseline.STGQExhaustive(rg, d.Cal, users, 5, 2, 4) //nolint:errcheck
			}
		})
	}
}

// --- Figures 1(g)/1(h): solution quality vs p ----------------------------
//
// These are quality figures, not timing figures: the benchmark reports k
// (STGArrange), k_h (PCArrange), and both total distances as custom
// metrics for every p.

func BenchmarkFig1gQuality(b *testing.B) {
	stInstance()
	for _, p := range []int{3, 5, 7, 9, 11} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			var pc *coordinate.PCResult
			var res *coordinate.STGResult
			var err error
			for i := 0; i < b.N; i++ {
				pc, err = coordinate.PCArrange(stRG, stByDays[7].Cal, stUsers, p, 4)
				if err != nil {
					b.Skip("manual coordination infeasible at this p")
				}
				res, err = coordinate.STGArrange(stRG, stByDays[7].Cal, stUsers, p, 4,
					pc.TotalDistance, p-1, core.DefaultOptions())
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(pc.ObservedK), "kh_manual")
			b.ReportMetric(float64(res.K), "k_arrange")
			b.ReportMetric(pc.TotalDistance, "dist_manual")
			b.ReportMetric(res.Answer.TotalDistance, "dist_arrange")
		})
	}
}

// --- Ablations: the contribution of each strategy ------------------------

func benchAblationSG(b *testing.B, mutate func(*core.Options)) {
	sgInstance()
	opt := core.DefaultOptions()
	mutate(&opt)
	for i := 0; i < b.N; i++ {
		if _, _, err := core.SGSelect(sgRG2, 7, 2, nil, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSGFull(b *testing.B) {
	benchAblationSG(b, func(*core.Options) {})
}

func BenchmarkAblationSGNoDistancePruning(b *testing.B) {
	benchAblationSG(b, func(o *core.Options) { o.DisableDistancePruning = true })
}

func BenchmarkAblationSGNoAcquaintancePruning(b *testing.B) {
	benchAblationSG(b, func(o *core.Options) { o.DisableAcquaintancePruning = true })
}

func BenchmarkAblationSGNoOrdering(b *testing.B) {
	benchAblationSG(b, func(o *core.Options) { o.DisableAccessOrdering = true })
}

func benchAblationSTG(b *testing.B, mutate func(*core.Options)) {
	stInstance()
	opt := core.DefaultOptions()
	mutate(&opt)
	for i := 0; i < b.N; i++ {
		if _, _, err := core.STGSelect(stRG, stByDays[7].Cal, stUsers, 6, 2, 4, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSTGFull(b *testing.B) {
	benchAblationSTG(b, func(*core.Options) {})
}

func BenchmarkAblationSTGNoAvailabilityPruning(b *testing.B) {
	benchAblationSTG(b, func(o *core.Options) { o.DisableAvailabilityPruning = true })
}

func BenchmarkAblationSTGNoTemporalExtensibility(b *testing.B) {
	benchAblationSTG(b, func(o *core.Options) { o.DisableTemporalExtensibility = true })
}

// BenchmarkAblationSTGNoPivot approximates disabling pivot time slots: the
// sequential per-period solver re-searches every window with SGSelect.
func BenchmarkAblationSTGNoPivot(b *testing.B) {
	stInstance()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.STGQ(stRG, stByDays[7].Cal, stUsers, 6, 2, 4, core.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- write path: journal append throughput --------------------------------
//
// BenchmarkJournalAppend tracks the durable write path alongside the query
// benchmarks: one fsync per record (the naive WAL) versus the group-commit
// batcher coalescing concurrent writers into shared fsyncs.

func journalRecord(seq uint64) journal.Record {
	return journal.Record{Seq: seq, Mut: stgq.Mutation{
		Op: stgq.MutSetAvailable, Person: stgq.PersonID(seq % 128), From: 12, To: 40,
	}}
}

func BenchmarkJournalAppend(b *testing.B) {
	b.Run("unbatched-fsync-per-record", func(b *testing.B) {
		log, err := journal.OpenLog(b.TempDir(), 0)
		if err != nil {
			b.Fatal(err)
		}
		defer log.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := log.Append([]journal.Record{journalRecord(uint64(i + 1))}); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		syncs, _, _ := log.Counters()
		b.ReportMetric(float64(syncs)/float64(b.N), "fsyncs/op")
	})
	b.Run("group-commit-concurrent", func(b *testing.B) {
		log, err := journal.OpenLog(b.TempDir(), 0)
		if err != nil {
			b.Fatal(err)
		}
		defer log.Close()
		batcher := journal.NewBatcher(log, 0, 0) // defaults
		defer batcher.Close()
		var seq atomic.Uint64
		b.SetParallelism(32) // many concurrent HTTP writers per core
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if err := batcher.Append(journalRecord(seq.Add(1))); err != nil {
					b.Error(err) // Fatal is not allowed off the benchmark goroutine
					return
				}
			}
		})
		b.StopTimer()
		syncs, _, _ := log.Counters()
		b.ReportMetric(float64(syncs)/float64(b.N), "fsyncs/op")
		// With STGQ_BENCH_OUT set (make bench / bench-smoke), leave the
		// run's numbers plus the journal histogram snapshot on disk as
		// BENCH_journal.json for the benchcheck validator and CI artifact.
		nsPerOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		if path, err := obsv.EmitBench("journal", "BenchmarkJournalAppend/group-commit-concurrent", nsPerOp, "stgq_journal_"); err != nil {
			b.Fatalf("emit bench report: %v", err)
		} else if path != "" {
			b.Logf("wrote %s", path)
		}
	})
}

// --- substrate micro-benchmarks ------------------------------------------

func BenchmarkRadiusExtraction(b *testing.B) {
	sgInstance()
	for _, s := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("s=%d", s), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sgData.Graph.ExtractRadiusGraph(sgInit, s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDatasetGeneration(b *testing.B) {
	b.Run("real194", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dataset.Real194(int64(i), 7)
		}
	})
	b.Run("synthetic3200", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dataset.Synthetic(3200, int64(i), 1)
		}
	})
}
