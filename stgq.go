// Package stgq is a Go implementation of the social-temporal group queries
// of Yang, Chen, Lee and Chen, "On Social-Temporal Group Query with
// Acquaintance Constraint" (PVLDB 4(6), 2011).
//
// Given a weighted social network (edge weight = social distance, smaller =
// closer) and the members' availability calendars, the package answers:
//
//   - SGQ(p, s, k) — find the p-person group containing the initiator with
//     the minimum total social distance, where every candidate lies within s
//     edges of the initiator and every attendee may be unacquainted with at
//     most k other attendees (FindGroup);
//   - STGQ(p, s, k, m) — additionally find m consecutive time slots where
//     the whole group is available (PlanActivity).
//
// Both problems are NP-hard; the default algorithms (SGSelect and
// STGSelect) are exact branch-and-bound searches with the paper's pruning
// strategies and handle realistic ego-network sizes interactively.
// Alternative exact engines (exhaustive baseline, integer programming) are
// selectable for cross-checking and benchmarking.
//
// # Quick start
//
//	pl := stgq.NewPlanner(48) // one day of half-hour slots
//	alice := pl.MustAddPerson("alice")
//	bob := pl.MustAddPerson("bob")
//	carol := pl.MustAddPerson("carol")
//	pl.Connect(alice, bob, 5)
//	pl.Connect(alice, carol, 9)
//	pl.Connect(bob, carol, 3)
//	for _, p := range []stgq.PersonID{alice, bob, carol} {
//		pl.SetAvailable(p, 36, 44) // evening
//	}
//	plan, err := pl.PlanActivity(stgq.STGQuery{
//		SGQuery: stgq.SGQuery{Initiator: alice, P: 3, S: 1, K: 0},
//		M:       4, // two hours
//	})
//
// See the examples directory for complete programs.
//
// # Persistence
//
// A Planner by itself is an in-memory structure: every person, friendship
// and availability update is lost when the process exits. The
// repro/internal/journal package adds durability on top of the mutation
// hook seam (SetMutationHook): each successful mutation is encoded as a
// typed, versioned record, group-committed to a write-ahead journal, and
// periodically folded into snapshots that reuse the internal/dataset
// serialization. On restart the journal store rebuilds the Planner by
// loading the latest snapshot and replaying the journal tail (any torn
// final record is truncated). A mutation call only returns once its record
// is durable, so an acknowledged write survives a crash. The stgqd server
// exposes this with its -data-dir flag.
//
// # Replication
//
// The journal doubles as a replication stream (repro/internal/replica):
// a durable stgqd is a leader that serves its committed records over GET
// /replication/stream, and followers — stgqd -follow <leader-url> —
// replay them into their own durable stores and serve the read-heavy,
// NP-hard query traffic, rejecting mutations with a redirect hint to the
// leader. Replication is asynchronous and monotonic per follower: each
// follower always holds a prefix of the leader's history, merely stale,
// and its staleness (applied vs. leader sequence number, time since last
// leader contact) is visible in its /status response. A follower whose
// position has been compacted away on the leader bootstraps from the
// leader's latest snapshot; a restarted follower recovers from its own
// disk.
//
// # Cluster topology
//
// The cluster gateway (repro/internal/gateway, command stgqgw) gives the
// replicated deployment a single front door, so clients never pick
// servers by hand:
//
//	                      ┌────────────► leader stgqd   all mutations
//	clients ──► stgqgw ───┤                  │           (journal + fsync)
//	                      ├─► follower stgqd ┤ /replication/stream
//	                      └─► follower stgqd ┘
//	                          queries, spread by least
//	                          pending requests
//
// The gateway probes every backend's GET /status for role, health and the
// durable sequence number, fans /query/* traffic across healthy followers
// under a configurable staleness bound (-max-lag, or per request with an
// X-STGQ-Max-Lag-Seconds header; followers over the bound are skipped and
// the leader is the fallback), forwards mutations to the leader —
// following 403 + X-STGQ-Leader redirects when the leader moves — and
// retries a read once on another backend when a follower dies
// mid-request.
//
// # Failover and epochs
//
// Every durable store carries a leader epoch — a generation number
// persisted in its meta file and reported in /status — and replication
// streams advertise it. A follower rejects the stream of a leader whose
// epoch is below its own (fencing: the revived corpse of a failed-over
// leader cannot roll anyone back) and re-bootstraps when a higher-epoch
// leader's history diverges from its local tail. Promotion — POST
// /promote on a follower, issued by an operator or by the gateway's
// opt-in auto-failover (stgqgw -auto-failover <grace>) — seals
// replication and re-opens the follower's store writable at epoch+1.
// The gateway orders leader claims by (epoch, durableSeq), so a stale
// claimant never wins on history length alone, and while no leader is
// known it fails mutations fast with 503 + Retry-After instead of
// dialing a dead address.
package stgq

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/baseline"
	"repro/internal/coordinate"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geo"
	"repro/internal/index"
	"repro/internal/ipmodel"
	"repro/internal/schedule"
	"repro/internal/socialgraph"
)

// PersonID identifies a person registered with a Planner.
type PersonID int

// MutationOp enumerates the state-changing Planner calls. The values are
// stable: they are persisted in journal records.
type MutationOp uint8

const (
	// MutAddPerson records an AddPerson call.
	MutAddPerson MutationOp = iota + 1
	// MutConnect records a Connect call.
	MutConnect
	// MutDisconnect records a Disconnect call.
	MutDisconnect
	// MutSetAvailable records a SetAvailable call.
	MutSetAvailable
	// MutSetBusy records a SetBusy call.
	MutSetBusy
	// MutSetPolicy records a SetSchedulePolicy call.
	MutSetPolicy
	// MutSetLocation records a SetLocation call.
	MutSetLocation
)

func (op MutationOp) String() string {
	switch op {
	case MutAddPerson:
		return "add-person"
	case MutConnect:
		return "connect"
	case MutDisconnect:
		return "disconnect"
	case MutSetAvailable:
		return "set-available"
	case MutSetBusy:
		return "set-busy"
	case MutSetPolicy:
		return "set-policy"
	case MutSetLocation:
		return "set-location"
	}
	return fmt.Sprintf("MutationOp(%d)", uint8(op))
}

// Mutation describes one successful state-changing Planner call. Which
// fields are meaningful depends on Op:
//
//   - MutAddPerson: Name (as requested) and Person (the assigned id);
//   - MutConnect: A, B and Distance;
//   - MutDisconnect: A and B;
//   - MutSetAvailable, MutSetBusy: Person, From and To;
//   - MutSetPolicy: Person and Policy;
//   - MutSetLocation: Person, X and Y.
type Mutation struct {
	Op       MutationOp
	Name     string
	Person   PersonID
	A, B     PersonID
	Distance float64
	From, To int
	Policy   SharePolicy
	X, Y     float64
}

// MutationHook observes every successful mutation. It is invoked
// synchronously while the planner's write lock is held — implementations
// must be fast and must not call back into the Planner. The returned wait
// function (nil when no waiting is needed) is called by the mutating method
// after the lock has been released; its error is returned to the caller.
//
// The two-phase shape is what lets a durable backend order records
// correctly and still batch syncs: sequence numbers are assigned under the
// planner lock (so journal order equals apply order), while the wait for
// group commit happens outside it (so concurrent writers' syncs coalesce).
//
// ctx is the caller's request context as passed to the Ctx mutation
// variants (context.Background() from the plain variants). Hooks use it
// for request-scoped attribution — e.g. recording journal stage timings
// into an obsv.Stages carried by the context — not for cancellation: a
// mutation already applied in memory must still be journaled.
type MutationHook func(ctx context.Context, m Mutation) (wait func() error)

// Planner is the activity-planning service: a social graph plus the
// members' availability calendars. It is the entry point of the public API.
//
// A Planner is safe for concurrent use: queries may run in parallel with
// each other and with mutations (AddPerson, Connect, Disconnect,
// SetAvailable, SetBusy). Mutations serialize briefly on an internal lock;
// queries capture an immutable view (radius graph + calendar) under the
// lock and run the expensive search outside it.
type Planner struct {
	mu        sync.RWMutex
	g         *socialgraph.Graph
	horizon   int
	base      *schedule.Calendar // dataset-loaded availability, nil when empty-born
	cal       *schedule.Calendar // lazily built; immutable once materialized
	calDirty  bool
	avail     []availRange
	community []int // dataset-loaded community assignments, for Export
	policies  map[PersonID]SharePolicy
	locations map[PersonID]geo.Point
	grid      *geo.Grid // spatial index over locations; lazily created
	idx       *index.Index
	hook      MutationHook
}

type availRange struct {
	person   PersonID
	from, to int
	free     bool
}

// NewPlanner creates a Planner with the given schedule horizon in time
// slots. The paper's convention is 48 half-hour slots per day
// (stgq.SlotsPerDay); everyone starts fully busy.
func NewPlanner(horizonSlots int) *Planner {
	if horizonSlots < 0 {
		horizonSlots = 0
	}
	return &Planner{g: socialgraph.New(), horizon: horizonSlots, calDirty: true}
}

// SlotsPerDay is the paper's calendar granularity (48 half-hour slots).
const SlotsPerDay = schedule.SlotsPerDay

// Horizon returns the schedule horizon in slots.
func (pl *Planner) Horizon() int { return pl.horizon }

// NumPeople returns the number of registered people.
func (pl *Planner) NumPeople() int {
	pl.mu.RLock()
	defer pl.mu.RUnlock()
	return pl.g.NumVertices()
}

// NumFriendships returns the number of social edges.
func (pl *Planner) NumFriendships() int {
	pl.mu.RLock()
	defer pl.mu.RUnlock()
	return pl.g.NumEdges()
}

// Counts returns the number of people and friendships as one consistent
// pair (a mutation cannot land between the two reads).
func (pl *Planner) Counts() (people, friendships int) {
	pl.mu.RLock()
	defer pl.mu.RUnlock()
	return pl.g.NumVertices(), pl.g.NumEdges()
}

// SetMutationHook installs (or, with nil, removes) the observer invoked on
// every successful mutation. Installing a hook after the fact does not
// replay past mutations; durable deployments install it before accepting
// traffic (see repro/internal/journal).
func (pl *Planner) SetMutationHook(h MutationHook) {
	pl.mu.Lock()
	pl.hook = h
	pl.mu.Unlock()
}

// notifyLocked runs the hook for m under the held write lock and returns
// the hook's wait function (nil without a hook). When the incremental
// query index is enabled it is maintained here too — inside the same
// critical section as the state change and the journal's sequence-number
// assignment, so index state, planner state and seq stamps can never be
// observed out of step.
func (pl *Planner) notifyLocked(ctx context.Context, m Mutation) func() error {
	if pl.idx != nil {
		applyIndex(pl.idx, m)
	}
	if pl.hook == nil {
		return nil
	}
	return pl.hook(ctx, m)
}

// applyIndex translates one successful mutation into the index's typed
// apply calls. The mapping encodes the precise invalidation per mutation
// type: schedule edits rebuild one availability row, graph edits drop the
// distance labels, and location/policy changes advance the stamp only.
func applyIndex(ix *index.Index, m Mutation) {
	switch m.Op {
	case MutAddPerson:
		ix.AddPerson()
	case MutConnect:
		ix.Connect()
	case MutDisconnect:
		ix.Disconnect()
	case MutSetAvailable:
		ix.SetRange(int(m.Person), m.From, m.To, true)
	case MutSetBusy:
		ix.SetRange(int(m.Person), m.From, m.To, false)
	case MutSetLocation:
		// Locations feed the spatial grid, not the availability rows or
		// distance labels; only the stamp advances.
		ix.Advance()
	case MutSetPolicy:
		// Policies mask the *visible* calendar; the index tracks true
		// availability and the planner withholds it while any policy is
		// set, so only the stamp advances.
		ix.Advance()
	}
}

// EnableIndex builds the incremental query index (repro/internal/index)
// over the planner's current state and keeps it maintained on every later
// mutation. Queries then serve radius-graph extraction from cached
// distance labels and pivot-window eligibility from precomputed
// availability runs instead of recomputing both from scratch. Enabling is
// idempotent (the index is rebuilt); it cannot be disabled.
func (pl *Planner) EnableIndex() { pl.EnableIndexAt(0) }

// EnableIndexAt is EnableIndex with an explicit starting sequence number:
// the coordinate the current state reflects. Durable deployments pass the
// journal's recovered sequence number, so index stamps line up with
// journal seqs — the planner applies index updates in the same critical
// section in which the journal assigns sequence numbers, keeping the two
// counters in lock-step from then on.
func (pl *Planner) EnableIndexAt(seq uint64) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	pl.idx = index.Build(pl.calendarLocked(), seq)
}

// IndexEnabled reports whether the incremental query index is active.
func (pl *Planner) IndexEnabled() bool {
	pl.mu.RLock()
	defer pl.mu.RUnlock()
	return pl.idx != nil
}

// IndexStats reports the index's current position and label count (both
// zero when the index is disabled) for status endpoints and tests.
func (pl *Planner) IndexStats() (seq uint64, labels int) {
	pl.mu.RLock()
	ix := pl.idx
	pl.mu.RUnlock()
	if ix == nil {
		return 0, 0
	}
	return ix.Seq(), ix.Labels()
}

// MaxNameLen bounds display names (in bytes). Keeping names bounded here
// guarantees every valid mutation fits in a journal record, so a single
// bad call can never poison a durable store.
const MaxNameLen = 1 << 16

// AddPerson registers a person and returns their id. Names must be unique
// when non-empty; a duplicate name is disambiguated silently (the person is
// registered unnamed) so ids stay dense. The error is non-nil when the
// name exceeds MaxNameLen (nothing is registered) or when a mutation hook
// fails to make the addition durable.
func (pl *Planner) AddPerson(name string) (PersonID, error) {
	return pl.AddPersonCtx(context.Background(), name)
}

// AddPersonCtx is AddPerson with a caller context for the mutation hook
// (request-scoped attribution; see MutationHook).
func (pl *Planner) AddPersonCtx(ctx context.Context, name string) (PersonID, error) {
	if len(name) > MaxNameLen {
		return 0, fmt.Errorf("%w: name of %d bytes exceeds %d", ErrBadQuery, len(name), MaxNameLen)
	}
	pl.mu.Lock()
	id, err := pl.g.AddVertex(name)
	if err != nil {
		// Disambiguate silently; the original name remains reachable.
		id, _ = pl.g.AddVertex("")
	}
	pl.calDirty = true
	wait := pl.notifyLocked(ctx, Mutation{Op: MutAddPerson, Name: name, Person: PersonID(id)})
	pl.mu.Unlock()
	if wait != nil {
		if err := wait(); err != nil {
			return PersonID(id), err
		}
	}
	return PersonID(id), nil
}

// MustAddPerson is AddPerson for setup code that does not use a durable
// backend; it panics when the mutation hook fails.
func (pl *Planner) MustAddPerson(name string) PersonID {
	id, err := pl.AddPerson(name)
	if err != nil {
		panic(err)
	}
	return id
}

// PersonByName looks up a person by name.
func (pl *Planner) PersonByName(name string) (PersonID, error) {
	pl.mu.RLock()
	defer pl.mu.RUnlock()
	id, err := pl.g.VertexByLabel(name)
	return PersonID(id), err
}

// Name returns the display name of a person ("" when unnamed).
func (pl *Planner) Name(p PersonID) string {
	pl.mu.RLock()
	defer pl.mu.RUnlock()
	return pl.g.Label(int(p))
}

// Connect records that two people know each other with the given social
// distance (> 0; smaller = closer). Reconnecting keeps the smaller
// distance.
func (pl *Planner) Connect(a, b PersonID, distance float64) error {
	return pl.ConnectCtx(context.Background(), a, b, distance)
}

// ConnectCtx is Connect with a caller context for the mutation hook.
func (pl *Planner) ConnectCtx(ctx context.Context, a, b PersonID, distance float64) error {
	pl.mu.Lock()
	err := pl.g.AddEdge(int(a), int(b), distance)
	var wait func() error
	if err == nil {
		wait = pl.notifyLocked(ctx, Mutation{Op: MutConnect, A: a, B: b, Distance: distance})
	}
	pl.mu.Unlock()
	if err != nil {
		return mapVertexErr(err)
	}
	if wait != nil {
		return wait()
	}
	return nil
}

// mapVertexErr translates the graph's lookup errors into the package's
// sentinels so callers (and the HTTP layer's 404 mapping) see consistent
// errors instead of internal package strings.
func mapVertexErr(err error) error {
	switch {
	case errors.Is(err, socialgraph.ErrVertexNotFound):
		return fmt.Errorf("%w: %v", ErrPersonNotFound, err)
	case errors.Is(err, socialgraph.ErrEdgeNotFound):
		return fmt.Errorf("%w: %v", ErrNotFriends, err)
	}
	return err
}

// Disconnect removes the friendship between a and b. Disconnecting people
// who are not connected is an error.
func (pl *Planner) Disconnect(a, b PersonID) error {
	return pl.DisconnectCtx(context.Background(), a, b)
}

// DisconnectCtx is Disconnect with a caller context for the mutation hook.
func (pl *Planner) DisconnectCtx(ctx context.Context, a, b PersonID) error {
	pl.mu.Lock()
	err := pl.g.RemoveEdge(int(a), int(b))
	var wait func() error
	if err == nil {
		wait = pl.notifyLocked(ctx, Mutation{Op: MutDisconnect, A: a, B: b})
	}
	pl.mu.Unlock()
	if err != nil {
		return mapVertexErr(err)
	}
	if wait != nil {
		return wait()
	}
	return nil
}

// SetAvailable marks person p free over slot range [from, to).
func (pl *Planner) SetAvailable(p PersonID, from, to int) error {
	return pl.setRange(context.Background(), p, from, to, true)
}

// SetAvailableCtx is SetAvailable with a caller context for the mutation
// hook.
func (pl *Planner) SetAvailableCtx(ctx context.Context, p PersonID, from, to int) error {
	return pl.setRange(ctx, p, from, to, true)
}

// SetBusy marks person p busy over slot range [from, to).
func (pl *Planner) SetBusy(p PersonID, from, to int) error {
	return pl.setRange(context.Background(), p, from, to, false)
}

// SetBusyCtx is SetBusy with a caller context for the mutation hook.
func (pl *Planner) SetBusyCtx(ctx context.Context, p PersonID, from, to int) error {
	return pl.setRange(ctx, p, from, to, false)
}

func (pl *Planner) setRange(ctx context.Context, p PersonID, from, to int, free bool) error {
	pl.mu.Lock()
	if int(p) < 0 || int(p) >= pl.g.NumVertices() {
		pl.mu.Unlock()
		return fmt.Errorf("%w: person %d", ErrPersonNotFound, p)
	}
	if from < 0 || to > pl.horizon || from > to {
		pl.mu.Unlock()
		return fmt.Errorf("%w: slot range [%d,%d) outside horizon %d", ErrBadQuery, from, to, pl.horizon)
	}
	pl.avail = append(pl.avail, availRange{p, from, to, free})
	pl.calDirty = true
	op := MutSetBusy
	if free {
		op = MutSetAvailable
	}
	wait := pl.notifyLocked(ctx, Mutation{Op: op, Person: p, From: from, To: to})
	pl.mu.Unlock()
	if wait != nil {
		return wait()
	}
	return nil
}

// calendarLocked materializes the availability calendar. The caller must
// hold the write lock, or the read lock when the cache is known clean
// (the function then only reads). The returned calendar is never mutated
// afterwards (rebuilds allocate a fresh one), so queries may keep using it
// after the lock is released.
func (pl *Planner) calendarLocked() *schedule.Calendar {
	if !pl.calDirty && pl.cal != nil {
		return pl.cal
	}
	var cal *schedule.Calendar
	if pl.base != nil {
		// People loaded from a dataset/snapshot keep their imported
		// schedules underneath any later SetAvailable/SetBusy edits;
		// the word-wise clone keeps the rebuild cheap.
		cal = pl.base.ExtendedClone(pl.g.NumVertices())
	} else {
		cal = schedule.NewCalendar(pl.g.NumVertices(), pl.horizon)
	}
	for _, a := range pl.avail {
		cal.SetRange(int(a.person), a.from, a.to, a.free)
	}
	pl.cal = cal
	pl.calDirty = false
	return cal
}

// FromDataset wraps a generated dataset (see cmd/stgqgen and
// internal/dataset) in a Planner. The dataset's calendar becomes the base
// layer: later SetAvailable/SetBusy calls edit on top of it. Privacy
// policies recorded in the dataset (a durable store's snapshot) are
// restored; unknown policy values fall back to ShareAll. Locations are
// restored into the spatial index; people without one stay unlocated
// (excluded from geo-social queries).
func FromDataset(d *dataset.Dataset) *Planner {
	var policies map[PersonID]SharePolicy
	for v, pol := range d.Policies {
		sp := SharePolicy(pol)
		if sp <= ShareAll || sp > ShareNone {
			continue
		}
		if policies == nil {
			policies = make(map[PersonID]SharePolicy, len(d.Policies))
		}
		policies[PersonID(v)] = sp
	}
	pl := &Planner{
		g:         d.Graph,
		horizon:   d.Cal.Horizon(),
		base:      d.Cal,
		cal:       d.Cal,
		calDirty:  false,
		community: d.Community,
		policies:  policies,
	}
	for v, xy := range d.Locations {
		pl.setLocationLocked(PersonID(v), geo.Point{X: xy[0], Y: xy[1]})
	}
	return pl
}

// Export returns a consistent point-in-time copy of the planner's state as
// a dataset (graph deep-copied, calendar materialized), suitable for
// serialization with dataset.Save and for round-tripping through
// FromDataset. If onLocked is non-nil it runs while the planner lock is
// still held, letting callers capture state that must be consistent with
// the exported copy — the journal store uses it to pin the snapshot's
// sequence number. Privacy policies are part of the export, so a durable
// store's snapshots preserve them across compaction.
//
// Export also folds the accumulated SetAvailable/SetBusy edits into the
// base calendar: the materialized calendar becomes the new base layer and
// the edit log restarts empty, so a long-lived planner whose snapshots
// run periodically rebuilds its calendar from a bounded number of edits
// instead of an ever-growing log.
func (pl *Planner) Export(onLocked func()) *dataset.Dataset {
	pl.mu.Lock()
	// Clone the calendar too: handing out the live cache would let a
	// caller's SetRange edit the planner behind its lock.
	materialized := pl.calendarLocked()
	pl.base = materialized // fold: edits up to here are in the cache
	pl.avail = nil
	cal := materialized.ExtendedClone(0)
	g := pl.g.Clone()
	n := pl.g.NumVertices()
	community := make([]int, n)
	copy(community, pl.community) // people added later default to community 0
	var policies map[int]int
	if len(pl.policies) > 0 {
		policies = make(map[int]int, len(pl.policies))
		for p, pol := range pl.policies {
			policies[int(p)] = int(pol)
		}
	}
	var locations map[int][2]float64
	if len(pl.locations) > 0 {
		locations = make(map[int][2]float64, len(pl.locations))
		for p, pt := range pl.locations {
			locations[int(p)] = [2]float64{pt.X, pt.Y}
		}
	}
	if onLocked != nil {
		onLocked()
	}
	pl.mu.Unlock()
	days := 0
	if schedule.SlotsPerDay > 0 {
		days = (pl.horizon + schedule.SlotsPerDay - 1) / schedule.SlotsPerDay
	}
	return &dataset.Dataset{Graph: g, Cal: cal, Community: community, Days: days, Policies: policies, Locations: locations}
}

// queryView captures everything a query needs under one lock acquisition:
// the feasible radius graph and, when withCalendar is set, the
// initiator-visible calendar. Both are immutable, so the search itself
// runs without holding any lock. Extraction and masking only read planner
// state, so concurrent queries share a read lock; the write lock is taken
// only when the calendar cache must be (re)materialized.
func (pl *Planner) queryView(initiator PersonID, s int, withCalendar bool) (*socialgraph.RadiusGraph, *schedule.Calendar, core.PivotRuns, error) {
	pl.mu.RLock()
	if !withCalendar || (!pl.calDirty && pl.cal != nil) {
		rg, cal, runs, err := pl.viewRLocked(initiator, s, withCalendar)
		pl.mu.RUnlock()
		return rg, cal, runs, err
	}
	pl.mu.RUnlock()

	pl.mu.Lock()
	defer pl.mu.Unlock()
	pl.calendarLocked()
	return pl.viewRLocked(initiator, s, withCalendar)
}

// viewRLocked builds the immutable query view. The caller holds at least
// the read lock, and when withCalendar is set the calendar cache is
// already materialized. The returned PivotRuns provider (nil when the
// index is disabled or privacy masking is in play) is a snapshot captured
// under the same lock as the calendar, so the two always agree.
func (pl *Planner) viewRLocked(initiator PersonID, s int, withCalendar bool) (*socialgraph.RadiusGraph, *schedule.Calendar, core.PivotRuns, error) {
	if int(initiator) < 0 || int(initiator) >= pl.g.NumVertices() {
		return nil, nil, nil, fmt.Errorf("%w: person %d", ErrPersonNotFound, initiator)
	}
	if s < 1 {
		return nil, nil, nil, fmt.Errorf("%w: social radius s=%d < 1", ErrBadQuery, s)
	}
	rg, err := pl.radiusGraphRLocked(int(initiator), s)
	if err != nil {
		return nil, nil, nil, err
	}
	var cal *schedule.Calendar
	var runs core.PivotRuns
	if withCalendar {
		cal = pl.visibleCalendarLocked(initiator)
		// Privacy masking blanks hidden rows in the visible calendar; the
		// index tracks true availability, so masked views fall back to
		// row walks rather than leak an invisible schedule's runs.
		if pl.idx != nil && len(pl.policies) == 0 {
			runs = pl.idx.AvailSnapshot()
		}
	}
	return rg, cal, runs, nil
}

// radiusGraphRLocked extracts the feasible graph for one query, serving
// the s-bounded distance vector from the index's landmark labels when one
// is cached (graph mutations drop the labels, so a present entry is
// always current) and caching the vector it computed on a miss. The
// caller holds at least the read lock, which serializes the lookup
// against graph mutations and index invalidation alike.
func (pl *Planner) radiusGraphRLocked(q, s int) (*socialgraph.RadiusGraph, error) {
	if pl.idx == nil {
		return pl.g.ExtractRadiusGraph(q, s)
	}
	if dist, ok := pl.idx.Label(q, s); ok {
		return pl.g.ExtractRadiusGraphWithDistances(q, dist), nil
	}
	dist, err := pl.g.EdgeMinDistances(q, s)
	if err != nil {
		return nil, err
	}
	pl.idx.StoreLabel(q, s, dist)
	return pl.g.ExtractRadiusGraphWithDistances(q, dist), nil
}

// FindGroup answers a social group query.
func (pl *Planner) FindGroup(q SGQuery) (*GroupResult, error) {
	rg, _, _, err := pl.queryView(q.Initiator, q.S, false)
	if err != nil {
		return nil, err
	}
	opts := q.options()
	var (
		grp   *core.Group
		stats core.Stats
	)
	switch q.Algorithm {
	case AlgDefault:
		grp, stats, err = core.SGSelect(rg, q.P, q.K, nil, opts)
	case AlgBaseline:
		grp, err = baseline.SGQ(rg, q.P, q.K, nil)
	case AlgIP:
		grp, err = ipmodel.SGQReduced(rg, q.P, q.K, ipmodel.SolveOptions{})
	default:
		return nil, fmt.Errorf("%w: unknown algorithm %d", ErrBadQuery, q.Algorithm)
	}
	if err != nil {
		return nil, err
	}
	return groupResult(rg, grp, stats), nil
}

// PlanActivity answers a social-temporal group query.
func (pl *Planner) PlanActivity(q STGQuery) (*PlanResult, error) {
	rg, cal, runs, err := pl.queryView(q.Initiator, q.S, true)
	if err != nil {
		return nil, err
	}
	calUser := dataset.CalUsers(rg)
	opts := q.options()
	opts.Runs = runs
	var (
		ans   *core.STGroup
		stats core.Stats
	)
	switch q.Algorithm {
	case AlgDefault:
		if q.Parallel > 1 {
			ans, stats, err = core.STGSelectParallel(rg, cal, calUser, q.P, q.K, q.M, opts, q.Parallel)
		} else {
			ans, stats, err = core.STGSelect(rg, cal, calUser, q.P, q.K, q.M, opts)
		}
	case AlgBaseline:
		ans, err = baseline.STGQ(rg, cal, calUser, q.P, q.K, q.M, opts)
	case AlgIP:
		ans, err = ipmodel.STGQReduced(rg, cal, calUser, q.P, q.K, q.M, ipmodel.SolveOptions{})
	default:
		return nil, fmt.Errorf("%w: unknown algorithm %d", ErrBadQuery, q.Algorithm)
	}
	if err != nil {
		return nil, err
	}
	return &PlanResult{
		GroupResult: *groupResult(rg, &ans.Group, stats),
		Window:      TimeWindow{Start: ans.Interval.Start, End: ans.Interval.End + 1},
		PivotSlot:   ans.Pivot,
	}, nil
}

// PlanManually simulates the phone-coordination process the paper compares
// against (PCArrange, Section 5.1). The result reports the observed
// acquaintance bound k_h of the manually assembled group.
func (pl *Planner) PlanManually(q STGQuery) (*ManualPlan, error) {
	rg, cal, _, err := pl.queryView(q.Initiator, q.S, true)
	if err != nil {
		return nil, err
	}
	res, err := coordinate.PCArrange(rg, cal, dataset.CalUsers(rg), q.P, q.M)
	if err != nil {
		return nil, err
	}
	members := make([]Member, len(res.Members))
	for i, v := range res.Members {
		members[i] = Member{ID: PersonID(rg.Orig[v]), Name: rg.Labels[v], Distance: rg.Dist[v]}
	}
	return &ManualPlan{
		Members:       members,
		TotalDistance: res.TotalDistance,
		Window:        TimeWindow{Start: res.Period.Start, End: res.Period.End + 1},
		ObservedK:     res.ObservedK,
	}, nil
}

// PlanWithSmallestK runs STGArrange: it increases k from 0 until the exact
// planner matches or beats the target total distance (typically the manual
// plan's), returning that k and the plan.
func (pl *Planner) PlanWithSmallestK(q STGQuery, targetDistance float64) (int, *PlanResult, error) {
	rg, cal, runs, err := pl.queryView(q.Initiator, q.S, true)
	if err != nil {
		return 0, nil, err
	}
	opts := q.options()
	opts.Runs = runs
	res, err := coordinate.STGArrange(rg, cal, dataset.CalUsers(rg), q.P, q.M, targetDistance, q.P-1, opts)
	if err != nil {
		return 0, nil, err
	}
	return res.K, &PlanResult{
		GroupResult: *groupResult(rg, &res.Answer.Group, core.Stats{}),
		Window:      TimeWindow{Start: res.Answer.Interval.Start, End: res.Answer.Interval.End + 1},
		PivotSlot:   res.Answer.Pivot,
	}, nil
}

func groupResult(rg *socialgraph.RadiusGraph, grp *core.Group, stats core.Stats) *GroupResult {
	members := make([]Member, len(grp.Members))
	for i, v := range grp.Members {
		members[i] = Member{ID: PersonID(rg.Orig[v]), Name: rg.Labels[v], Distance: rg.Dist[v]}
	}
	return &GroupResult{
		Members:       members,
		TotalDistance: grp.TotalDistance,
		Stats:         stats,
	}
}
