// Package stgq is a Go implementation of the social-temporal group queries
// of Yang, Chen, Lee and Chen, "On Social-Temporal Group Query with
// Acquaintance Constraint" (PVLDB 4(6), 2011).
//
// Given a weighted social network (edge weight = social distance, smaller =
// closer) and the members' availability calendars, the package answers:
//
//   - SGQ(p, s, k) — find the p-person group containing the initiator with
//     the minimum total social distance, where every candidate lies within s
//     edges of the initiator and every attendee may be unacquainted with at
//     most k other attendees (FindGroup);
//   - STGQ(p, s, k, m) — additionally find m consecutive time slots where
//     the whole group is available (PlanActivity).
//
// Both problems are NP-hard; the default algorithms (SGSelect and
// STGSelect) are exact branch-and-bound searches with the paper's pruning
// strategies and handle realistic ego-network sizes interactively.
// Alternative exact engines (exhaustive baseline, integer programming) are
// selectable for cross-checking and benchmarking.
//
// # Quick start
//
//	pl := stgq.NewPlanner(48) // one day of half-hour slots
//	alice := pl.AddPerson("alice")
//	bob := pl.AddPerson("bob")
//	carol := pl.AddPerson("carol")
//	pl.Connect(alice, bob, 5)
//	pl.Connect(alice, carol, 9)
//	pl.Connect(bob, carol, 3)
//	for _, p := range []stgq.PersonID{alice, bob, carol} {
//		pl.SetAvailable(p, 36, 44) // evening
//	}
//	plan, err := pl.PlanActivity(stgq.STGQuery{
//		SGQuery: stgq.SGQuery{Initiator: alice, P: 3, S: 1, K: 0},
//		M:       4, // two hours
//	})
//
// See the examples directory for complete programs.
package stgq

import (
	"fmt"
	"sync"

	"repro/internal/baseline"
	"repro/internal/coordinate"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ipmodel"
	"repro/internal/schedule"
	"repro/internal/socialgraph"
)

// PersonID identifies a person registered with a Planner.
type PersonID int

// Planner is the activity-planning service: a social graph plus the
// members' availability calendars. It is the entry point of the public API.
//
// A Planner is safe for concurrent queries; mutation (AddPerson, Connect,
// SetAvailable, SetBusy) must not race with queries.
type Planner struct {
	g       *socialgraph.Graph
	horizon int

	mu       sync.Mutex
	cal      *schedule.Calendar // lazily built
	calDirty bool
	avail    []availRange
	policies map[PersonID]SharePolicy
}

type availRange struct {
	person   PersonID
	from, to int
	free     bool
}

// NewPlanner creates a Planner with the given schedule horizon in time
// slots. The paper's convention is 48 half-hour slots per day
// (stgq.SlotsPerDay); everyone starts fully busy.
func NewPlanner(horizonSlots int) *Planner {
	if horizonSlots < 0 {
		horizonSlots = 0
	}
	return &Planner{g: socialgraph.New(), horizon: horizonSlots, calDirty: true}
}

// SlotsPerDay is the paper's calendar granularity (48 half-hour slots).
const SlotsPerDay = schedule.SlotsPerDay

// Horizon returns the schedule horizon in slots.
func (pl *Planner) Horizon() int { return pl.horizon }

// NumPeople returns the number of registered people.
func (pl *Planner) NumPeople() int { return pl.g.NumVertices() }

// NumFriendships returns the number of social edges.
func (pl *Planner) NumFriendships() int { return pl.g.NumEdges() }

// AddPerson registers a person and returns their id. Names must be unique
// when non-empty.
func (pl *Planner) AddPerson(name string) PersonID {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	id, err := pl.g.AddVertex(name)
	if err != nil {
		// Disambiguate silently; the original name remains reachable.
		id, _ = pl.g.AddVertex("")
	}
	pl.calDirty = true
	return PersonID(id)
}

// PersonByName looks up a person by name.
func (pl *Planner) PersonByName(name string) (PersonID, error) {
	id, err := pl.g.VertexByLabel(name)
	return PersonID(id), err
}

// Name returns the display name of a person ("" when unnamed).
func (pl *Planner) Name(p PersonID) string { return pl.g.Label(int(p)) }

// Connect records that two people know each other with the given social
// distance (> 0; smaller = closer). Reconnecting keeps the smaller
// distance.
func (pl *Planner) Connect(a, b PersonID, distance float64) error {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.g.AddEdge(int(a), int(b), distance)
}

// SetAvailable marks person p free over slot range [from, to).
func (pl *Planner) SetAvailable(p PersonID, from, to int) error {
	return pl.setRange(p, from, to, true)
}

// SetBusy marks person p busy over slot range [from, to).
func (pl *Planner) SetBusy(p PersonID, from, to int) error {
	return pl.setRange(p, from, to, false)
}

func (pl *Planner) setRange(p PersonID, from, to int, free bool) error {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if int(p) < 0 || int(p) >= pl.g.NumVertices() {
		return fmt.Errorf("%w: person %d", ErrPersonNotFound, p)
	}
	if from < 0 || to > pl.horizon || from > to {
		return fmt.Errorf("%w: slot range [%d,%d) outside horizon %d", ErrBadQuery, from, to, pl.horizon)
	}
	pl.avail = append(pl.avail, availRange{p, from, to, free})
	pl.calDirty = true
	return nil
}

// calendar materializes the availability calendar.
func (pl *Planner) calendar() *schedule.Calendar {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if !pl.calDirty && pl.cal != nil {
		return pl.cal
	}
	cal := schedule.NewCalendar(pl.g.NumVertices(), pl.horizon)
	for _, a := range pl.avail {
		cal.SetRange(int(a.person), a.from, a.to, a.free)
	}
	pl.cal = cal
	pl.calDirty = false
	return cal
}

// FromDataset wraps a generated dataset (see cmd/stgqgen and
// internal/dataset) in a Planner.
func FromDataset(d *dataset.Dataset) *Planner {
	pl := &Planner{
		g:        d.Graph,
		horizon:  d.Cal.Horizon(),
		cal:      d.Cal,
		calDirty: false,
	}
	return pl
}

// radius extracts the feasible graph for a query.
func (pl *Planner) radius(initiator PersonID, s int) (*socialgraph.RadiusGraph, error) {
	if int(initiator) < 0 || int(initiator) >= pl.g.NumVertices() {
		return nil, fmt.Errorf("%w: person %d", ErrPersonNotFound, initiator)
	}
	if s < 1 {
		return nil, fmt.Errorf("%w: social radius s=%d < 1", ErrBadQuery, s)
	}
	return pl.g.ExtractRadiusGraph(int(initiator), s)
}

// FindGroup answers a social group query.
func (pl *Planner) FindGroup(q SGQuery) (*GroupResult, error) {
	rg, err := pl.radius(q.Initiator, q.S)
	if err != nil {
		return nil, err
	}
	opts := q.options()
	var (
		grp   *core.Group
		stats core.Stats
	)
	switch q.Algorithm {
	case AlgDefault:
		grp, stats, err = core.SGSelect(rg, q.P, q.K, nil, opts)
	case AlgBaseline:
		grp, err = baseline.SGQ(rg, q.P, q.K, nil)
	case AlgIP:
		grp, err = ipmodel.SGQReduced(rg, q.P, q.K, ipmodel.SolveOptions{})
	default:
		return nil, fmt.Errorf("%w: unknown algorithm %d", ErrBadQuery, q.Algorithm)
	}
	if err != nil {
		return nil, err
	}
	return pl.groupResult(rg, grp, stats), nil
}

// PlanActivity answers a social-temporal group query.
func (pl *Planner) PlanActivity(q STGQuery) (*PlanResult, error) {
	rg, err := pl.radius(q.Initiator, q.S)
	if err != nil {
		return nil, err
	}
	cal := pl.visibleCalendar(q.Initiator)
	calUser := dataset.CalUsers(rg)
	opts := q.options()
	var (
		ans   *core.STGroup
		stats core.Stats
	)
	switch q.Algorithm {
	case AlgDefault:
		if q.Parallel > 1 {
			ans, stats, err = core.STGSelectParallel(rg, cal, calUser, q.P, q.K, q.M, opts, q.Parallel)
		} else {
			ans, stats, err = core.STGSelect(rg, cal, calUser, q.P, q.K, q.M, opts)
		}
	case AlgBaseline:
		ans, err = baseline.STGQ(rg, cal, calUser, q.P, q.K, q.M, opts)
	case AlgIP:
		ans, err = ipmodel.STGQReduced(rg, cal, calUser, q.P, q.K, q.M, ipmodel.SolveOptions{})
	default:
		return nil, fmt.Errorf("%w: unknown algorithm %d", ErrBadQuery, q.Algorithm)
	}
	if err != nil {
		return nil, err
	}
	return &PlanResult{
		GroupResult: *pl.groupResult(rg, &ans.Group, stats),
		Window:      TimeWindow{Start: ans.Interval.Start, End: ans.Interval.End + 1},
		PivotSlot:   ans.Pivot,
	}, nil
}

// PlanManually simulates the phone-coordination process the paper compares
// against (PCArrange, Section 5.1). The result reports the observed
// acquaintance bound k_h of the manually assembled group.
func (pl *Planner) PlanManually(q STGQuery) (*ManualPlan, error) {
	rg, err := pl.radius(q.Initiator, q.S)
	if err != nil {
		return nil, err
	}
	cal := pl.visibleCalendar(q.Initiator)
	res, err := coordinate.PCArrange(rg, cal, dataset.CalUsers(rg), q.P, q.M)
	if err != nil {
		return nil, err
	}
	members := make([]Member, len(res.Members))
	for i, v := range res.Members {
		members[i] = Member{ID: PersonID(rg.Orig[v]), Name: rg.Labels[v], Distance: rg.Dist[v]}
	}
	return &ManualPlan{
		Members:       members,
		TotalDistance: res.TotalDistance,
		Window:        TimeWindow{Start: res.Period.Start, End: res.Period.End + 1},
		ObservedK:     res.ObservedK,
	}, nil
}

// PlanWithSmallestK runs STGArrange: it increases k from 0 until the exact
// planner matches or beats the target total distance (typically the manual
// plan's), returning that k and the plan.
func (pl *Planner) PlanWithSmallestK(q STGQuery, targetDistance float64) (int, *PlanResult, error) {
	rg, err := pl.radius(q.Initiator, q.S)
	if err != nil {
		return 0, nil, err
	}
	cal := pl.visibleCalendar(q.Initiator)
	res, err := coordinate.STGArrange(rg, cal, dataset.CalUsers(rg), q.P, q.M, targetDistance, q.P-1, q.options())
	if err != nil {
		return 0, nil, err
	}
	return res.K, &PlanResult{
		GroupResult: *pl.groupResult(rg, &res.Answer.Group, core.Stats{}),
		Window:      TimeWindow{Start: res.Answer.Interval.Start, End: res.Answer.Interval.End + 1},
		PivotSlot:   res.Answer.Pivot,
	}, nil
}

func (pl *Planner) groupResult(rg *socialgraph.RadiusGraph, grp *core.Group, stats core.Stats) *GroupResult {
	members := make([]Member, len(grp.Members))
	for i, v := range grp.Members {
		members[i] = Member{ID: PersonID(rg.Orig[v]), Name: rg.Labels[v], Distance: rg.Dist[v]}
	}
	return &GroupResult{
		Members:       members,
		TotalDistance: grp.TotalDistance,
		Stats:         stats,
	}
}
