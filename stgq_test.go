package stgq_test

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	stgq "repro"
	"repro/internal/dataset"
	"repro/internal/schedule"
)

// examplePlanner builds the Figure 3 instance through the public API.
func examplePlanner(t testing.TB) (*stgq.Planner, map[string]stgq.PersonID) {
	t.Helper()
	pl := stgq.NewPlanner(7)
	ids := map[string]stgq.PersonID{}
	for _, n := range []string{"v2", "v3", "v4", "v6", "v7", "v8"} {
		ids[n] = pl.MustAddPerson(n)
	}
	conn := func(a, b string, d float64) {
		if err := pl.Connect(ids[a], ids[b], d); err != nil {
			t.Fatal(err)
		}
	}
	conn("v7", "v2", 17)
	conn("v7", "v3", 18)
	conn("v7", "v6", 23)
	conn("v7", "v8", 25)
	conn("v7", "v4", 27)
	conn("v2", "v4", 14)
	conn("v2", "v6", 19)
	conn("v3", "v4", 20)
	conn("v4", "v6", 29)
	avail := map[string][][2]int{
		"v2": {{0, 7}},
		"v3": {{1, 3}, {4, 6}},
		"v4": {{0, 5}, {6, 7}},
		"v6": {{1, 7}},
		"v7": {{0, 6}},
		"v8": {{0, 1}, {2, 3}, {4, 6}},
	}
	for n, ranges := range avail {
		for _, r := range ranges {
			if err := pl.SetAvailable(ids[n], r[0], r[1]); err != nil {
				t.Fatal(err)
			}
		}
	}
	return pl, ids
}

func TestFindGroupAllEngines(t *testing.T) {
	pl, ids := examplePlanner(t)
	for _, alg := range []stgq.Algorithm{stgq.AlgDefault, stgq.AlgBaseline, stgq.AlgIP} {
		res, err := pl.FindGroup(stgq.SGQuery{
			Initiator: ids["v7"], P: 4, S: 1, K: 1, Algorithm: alg,
		})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if res.TotalDistance != 62 {
			t.Errorf("%v: distance = %v, want 62", alg, res.TotalDistance)
		}
		if len(res.Members) != 4 {
			t.Errorf("%v: %d members, want 4", alg, len(res.Members))
		}
	}
}

func TestPlanActivityAllEngines(t *testing.T) {
	pl, ids := examplePlanner(t)
	for _, alg := range []stgq.Algorithm{stgq.AlgDefault, stgq.AlgBaseline, stgq.AlgIP} {
		res, err := pl.PlanActivity(stgq.STGQuery{
			SGQuery: stgq.SGQuery{Initiator: ids["v7"], P: 4, S: 1, K: 1, Algorithm: alg},
			M:       3,
		})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if res.TotalDistance != 67 {
			t.Errorf("%v: distance = %v, want 67", alg, res.TotalDistance)
		}
		if res.Window.Start != 1 || res.Window.End != 5 {
			t.Errorf("%v: window = %+v, want [1,5)", alg, res.Window)
		}
		names := map[string]bool{}
		for _, m := range res.Members {
			names[m.Name] = true
		}
		for _, want := range []string{"v2", "v4", "v6", "v7"} {
			if !names[want] {
				t.Errorf("%v: members missing %s", alg, want)
			}
		}
	}
}

func TestPlanActivityParallel(t *testing.T) {
	pl, ids := examplePlanner(t)
	seq, err := pl.PlanActivity(stgq.STGQuery{
		SGQuery: stgq.SGQuery{Initiator: ids["v7"], P: 4, S: 1, K: 1},
		M:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	par, err := pl.PlanActivity(stgq.STGQuery{
		SGQuery:  stgq.SGQuery{Initiator: ids["v7"], P: 4, S: 1, K: 1},
		M:        3,
		Parallel: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if par.TotalDistance != seq.TotalDistance {
		t.Errorf("parallel %v != sequential %v", par.TotalDistance, seq.TotalDistance)
	}
}

func TestManualVsAutomaticPlanning(t *testing.T) {
	pl, ids := examplePlanner(t)
	manual, err := pl.PlanManually(stgq.STGQuery{
		SGQuery: stgq.SGQuery{Initiator: ids["v7"], P: 4, S: 1},
		M:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if manual.Window.Len() != 3 {
		t.Errorf("manual window %+v, want length 3", manual.Window)
	}
	k, plan, err := pl.PlanWithSmallestK(stgq.STGQuery{
		SGQuery: stgq.SGQuery{Initiator: ids["v7"], P: 4, S: 1},
		M:       3,
	}, manual.TotalDistance)
	if err != nil {
		t.Fatal(err)
	}
	if plan.TotalDistance > manual.TotalDistance {
		t.Errorf("automatic plan %v worse than manual %v", plan.TotalDistance, manual.TotalDistance)
	}
	if k > manual.ObservedK {
		t.Errorf("smallest k %d exceeds manual k_h %d", k, manual.ObservedK)
	}
}

func TestQueryErrors(t *testing.T) {
	pl, ids := examplePlanner(t)
	if _, err := pl.FindGroup(stgq.SGQuery{Initiator: 99, P: 3, S: 1, K: 1}); !errors.Is(err, stgq.ErrPersonNotFound) {
		t.Errorf("unknown initiator: %v", err)
	}
	if _, err := pl.FindGroup(stgq.SGQuery{Initiator: ids["v7"], P: 3, S: 0, K: 1}); !errors.Is(err, stgq.ErrBadQuery) {
		t.Errorf("s=0: %v", err)
	}
	if _, err := pl.FindGroup(stgq.SGQuery{Initiator: ids["v7"], P: 40, S: 1, K: 1}); !errors.Is(err, stgq.ErrNoFeasibleGroup) {
		t.Errorf("oversized p: %v", err)
	}
	if _, err := pl.FindGroup(stgq.SGQuery{Initiator: ids["v7"], P: 3, S: 1, K: 1, Algorithm: stgq.Algorithm(9)}); !errors.Is(err, stgq.ErrBadQuery) {
		t.Errorf("unknown algorithm: %v", err)
	}
	if err := pl.SetAvailable(ids["v7"], -1, 3); !errors.Is(err, stgq.ErrBadQuery) {
		t.Errorf("negative slot: %v", err)
	}
	if err := pl.SetAvailable(stgq.PersonID(99), 0, 3); !errors.Is(err, stgq.ErrPersonNotFound) {
		t.Errorf("unknown person: %v", err)
	}
}

func TestPersonLookupAndAccessors(t *testing.T) {
	pl, ids := examplePlanner(t)
	got, err := pl.PersonByName("v7")
	if err != nil || got != ids["v7"] {
		t.Errorf("PersonByName: %v, %v", got, err)
	}
	if _, err := pl.PersonByName("nobody"); err == nil {
		t.Error("unknown name should fail")
	}
	if pl.Name(ids["v2"]) != "v2" {
		t.Error("Name lookup wrong")
	}
	if pl.NumPeople() != 6 || pl.NumFriendships() != 9 {
		t.Errorf("counts: %d people, %d edges", pl.NumPeople(), pl.NumFriendships())
	}
	if pl.Horizon() != 7 {
		t.Errorf("horizon = %d", pl.Horizon())
	}
}

func TestSchedulesMutableBetweenQueries(t *testing.T) {
	pl, ids := examplePlanner(t)
	q := stgq.STGQuery{
		SGQuery: stgq.SGQuery{Initiator: ids["v7"], P: 4, S: 1, K: 1},
		M:       3,
	}
	before, err := pl.PlanActivity(q)
	if err != nil {
		t.Fatal(err)
	}
	// v6 cancels everything: the optimal group must change or vanish.
	if err := pl.SetBusy(ids["v6"], 0, 7); err != nil {
		t.Fatal(err)
	}
	after, err := pl.PlanActivity(q)
	if err == nil {
		if after.TotalDistance <= before.TotalDistance {
			t.Errorf("after v6 cancels, distance %v should exceed %v (or be infeasible)",
				after.TotalDistance, before.TotalDistance)
		}
	} else if !errors.Is(err, stgq.ErrNoFeasibleGroup) {
		t.Fatal(err)
	}
}

func TestFromDataset(t *testing.T) {
	d := dataset.Real194(42, 2)
	pl := stgq.FromDataset(d)
	if pl.NumPeople() != dataset.Real194Size {
		t.Fatalf("people = %d", pl.NumPeople())
	}
	q := stgq.PersonID(d.PickInitiator(75))
	res, err := pl.FindGroup(stgq.SGQuery{Initiator: q, P: 4, S: 1, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Members) != 4 || res.TotalDistance <= 0 {
		t.Errorf("implausible result: %+v", res)
	}
	// Cross-check against the baseline engine on the same dataset.
	base, err := pl.FindGroup(stgq.SGQuery{Initiator: q, P: 4, S: 1, K: 2, Algorithm: stgq.AlgBaseline})
	if err != nil {
		t.Fatal(err)
	}
	if base.TotalDistance != res.TotalDistance {
		t.Errorf("engines disagree: %v vs %v", res.TotalDistance, base.TotalDistance)
	}
}

func TestWindowFormat(t *testing.T) {
	w := stgq.TimeWindow{Start: 36, End: 40}
	if got := w.Format(); got != "day1 18:00 – day1 19:30" {
		t.Errorf("Format = %q", got)
	}
	if (stgq.TimeWindow{}).Format() != "(empty)" {
		t.Error("empty window format wrong")
	}
	if w.Len() != 4 {
		t.Error("Len wrong")
	}
}

func TestDisconnect(t *testing.T) {
	pl, ids := examplePlanner(t)
	q := stgq.SGQuery{Initiator: ids["v7"], P: 4, S: 1, K: 1}
	before, err := pl.FindGroup(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Disconnect(ids["v2"], ids["v4"]); err != nil {
		t.Fatal(err)
	}
	if pl.NumFriendships() != 8 {
		t.Fatalf("friendships = %d, want 8", pl.NumFriendships())
	}
	after, err := pl.FindGroup(q)
	if err != nil {
		t.Fatal(err)
	}
	if after.TotalDistance <= before.TotalDistance {
		t.Errorf("removing an optimal edge should worsen the answer: %v vs %v",
			after.TotalDistance, before.TotalDistance)
	}
	if err := pl.Disconnect(ids["v2"], ids["v4"]); err == nil {
		t.Error("double disconnect should fail")
	}
}

// TestMutationHook checks the observer seam: every successful mutation is
// reported exactly once, in order, while failed mutations are not; a
// failing wait function surfaces to the caller.
func TestMutationHook(t *testing.T) {
	pl := stgq.NewPlanner(8)
	var seen []stgq.Mutation
	var waits int
	pl.SetMutationHook(func(_ context.Context, m stgq.Mutation) func() error {
		seen = append(seen, m)
		return func() error { waits++; return nil }
	})
	a := pl.MustAddPerson("a")
	b := pl.MustAddPerson("b")
	if err := pl.Connect(a, b, 5); err != nil {
		t.Fatal(err)
	}
	if err := pl.SetAvailable(a, 0, 8); err != nil {
		t.Fatal(err)
	}
	if err := pl.SetBusy(a, 2, 3); err != nil {
		t.Fatal(err)
	}
	if err := pl.Disconnect(a, b); err != nil {
		t.Fatal(err)
	}
	// Failed mutations must not be observed.
	if err := pl.Connect(a, a, 1); err == nil {
		t.Fatal("self loop should fail")
	}
	if err := pl.SetAvailable(stgq.PersonID(99), 0, 1); err == nil {
		t.Fatal("unknown person should fail")
	}
	wantOps := []stgq.MutationOp{
		stgq.MutAddPerson, stgq.MutAddPerson, stgq.MutConnect,
		stgq.MutSetAvailable, stgq.MutSetBusy, stgq.MutDisconnect,
	}
	if len(seen) != len(wantOps) {
		t.Fatalf("observed %d mutations, want %d", len(seen), len(wantOps))
	}
	for i, m := range seen {
		if m.Op != wantOps[i] {
			t.Errorf("mutation %d: op %v, want %v", i, m.Op, wantOps[i])
		}
	}
	if waits != len(wantOps) {
		t.Errorf("wait called %d times, want %d", waits, len(wantOps))
	}

	// A failing wait propagates to the mutator.
	wantErr := errors.New("fsync exploded")
	pl.SetMutationHook(func(context.Context, stgq.Mutation) func() error {
		return func() error { return wantErr }
	})
	if _, err := pl.AddPerson("c"); !errors.Is(err, wantErr) {
		t.Errorf("AddPerson err = %v, want %v", err, wantErr)
	}
	if err := pl.Connect(a, b, 2); !errors.Is(err, wantErr) {
		t.Errorf("Connect err = %v, want %v", err, wantErr)
	}
}

// TestFromDatasetThenMutate is the regression test for the base-calendar
// bug: editing availability on a dataset-backed planner used to throw away
// every schedule the dataset had loaded.
func TestFromDatasetThenMutate(t *testing.T) {
	d := dataset.Real194(42, 2)
	pl := stgq.FromDataset(d)
	freeBefore := countFree(d.Cal)
	// One person cancels one evening; everyone else's schedule must stay.
	if err := pl.SetBusy(0, 0, pl.Horizon()); err != nil {
		t.Fatal(err)
	}
	got := pl.Export(nil)
	freeAfter := countFree(got.Cal)
	lost := freeBefore - freeAfter
	if lost <= 0 || lost > pl.Horizon() {
		t.Fatalf("free slots %d → %d: only person 0's slots should disappear", freeBefore, freeAfter)
	}
	// And a later re-grant layers on top of the dataset schedule.
	if err := pl.SetAvailable(0, 0, 4); err != nil {
		t.Fatal(err)
	}
	if countFree(pl.Export(nil).Cal) != freeAfter+4 {
		t.Fatal("re-granted slots not visible")
	}
}

func countFree(c *schedule.Calendar) int {
	total := 0
	for u := 0; u < c.Users(); u++ {
		row := c.Row(u)
		for s := row.NextSet(0); s != -1; s = row.NextSet(s + 1) {
			total++
		}
	}
	return total
}

// TestExportRoundTrip: Export → dataset.Save/Load → FromDataset must
// answer queries identically.
func TestExportRoundTrip(t *testing.T) {
	pl, ids := examplePlanner(t)
	if err := pl.SetSchedulePolicy(ids["v3"], stgq.ShareFriends); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pl.Export(nil).Save(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := dataset.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	pl2 := stgq.FromDataset(d)
	q := stgq.STGQuery{SGQuery: stgq.SGQuery{Initiator: ids["v7"], P: 4, S: 1, K: 1}, M: 3}
	want, err := pl.PlanActivity(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pl2.PlanActivity(q)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalDistance != want.TotalDistance || got.Window != want.Window {
		t.Fatalf("round trip changed the plan: %+v vs %+v", got, want)
	}
	if pl2.Name(ids["v7"]) != "v7" {
		t.Error("names lost in round trip")
	}
	if got := pl2.SchedulePolicy(ids["v3"]); got != stgq.ShareFriends {
		t.Errorf("policy lost in round trip: %v", got)
	}
}

// TestExportFoldsAvailEdits pins Export's calendar folding: a planner
// that exported mid-stream (folding its edit log into the base calendar)
// must stay slot-for-slot identical to one that accumulated every edit —
// including for edits and people arriving after the fold.
func TestExportFoldsAvailEdits(t *testing.T) {
	folded, idsF := examplePlanner(t)
	plain, idsP := examplePlanner(t)

	mutate := func(pl *stgq.Planner, ids map[string]stgq.PersonID, round int) {
		if err := pl.SetBusy(ids["v2"], round%3, round%3+2); err != nil {
			t.Fatal(err)
		}
		if err := pl.SetAvailable(ids["v8"], 1, 5); err != nil {
			t.Fatal(err)
		}
		id := pl.MustAddPerson("")
		if err := pl.Connect(ids["v7"], id, 3); err != nil {
			t.Fatal(err)
		}
		if err := pl.SetAvailable(id, 0, 6); err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 3; round++ {
		mutate(folded, idsF, round)
		mutate(plain, idsP, round)
		folded.Export(nil) // fold point; plain never exports until the end
	}
	dsF := folded.Export(nil)
	dsP := plain.Export(nil)
	if dsF.Cal.Users() != dsP.Cal.Users() || dsF.Cal.Horizon() != dsP.Cal.Horizon() {
		t.Fatalf("calendar shape diverged: %dx%d vs %dx%d",
			dsF.Cal.Users(), dsF.Cal.Horizon(), dsP.Cal.Users(), dsP.Cal.Horizon())
	}
	for u := 0; u < dsF.Cal.Users(); u++ {
		for s := 0; s < dsF.Cal.Horizon(); s++ {
			if dsF.Cal.Available(u, s) != dsP.Cal.Available(u, s) {
				t.Fatalf("user %d slot %d: folded %v, plain %v",
					u, s, dsF.Cal.Available(u, s), dsP.Cal.Available(u, s))
			}
		}
	}
	q := stgq.STGQuery{SGQuery: stgq.SGQuery{Initiator: idsF["v7"], P: 4, S: 1, K: 1}, M: 2}
	want, errW := plain.PlanActivity(q)
	got, errG := folded.PlanActivity(q)
	if (errG == nil) != (errW == nil) {
		t.Fatalf("query errors diverged: %v vs %v", errG, errW)
	}
	if errG == nil && (got.TotalDistance != want.TotalDistance || got.Window != want.Window) {
		t.Fatalf("folded planner answers differently: %+v vs %+v", got, want)
	}
}

// TestConcurrentMutationsAndQueries exercises the planner's internal
// synchronization: parallel writers and readers must be race-free and
// every query must see a consistent snapshot (run under -race).
func TestConcurrentMutationsAndQueries(t *testing.T) {
	pl, ids := examplePlanner(t)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				i++
				switch i % 3 {
				case 0:
					pl.MustAddPerson("")
				case 1:
					_ = pl.Connect(ids["v2"], ids["v3"], float64(1+i%9))
				default:
					_ = pl.SetAvailable(ids["v4"], 0, 7)
				}
			}
		}(w)
	}
	for q := 0; q < 4; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_, err := pl.PlanActivity(stgq.STGQuery{
					SGQuery: stgq.SGQuery{Initiator: ids["v7"], P: 3, S: 1, K: 1},
					M:       2,
				})
				if err != nil && !errors.Is(err, stgq.ErrNoFeasibleGroup) {
					t.Error(err)
					return
				}
			}
		}()
	}
	time.Sleep(2 * time.Millisecond) // let writers and readers overlap
	close(stop)
	wg.Wait()
}

func TestAddPersonNameCap(t *testing.T) {
	pl := stgq.NewPlanner(8)
	if _, err := pl.AddPerson(strings.Repeat("x", stgq.MaxNameLen+1)); !errors.Is(err, stgq.ErrBadQuery) {
		t.Fatalf("oversized name: err = %v, want ErrBadQuery", err)
	}
	if pl.NumPeople() != 0 {
		t.Fatal("oversized name must not register anyone")
	}
	if _, err := pl.AddPerson(strings.Repeat("x", 100)); err != nil {
		t.Fatal(err)
	}
}
