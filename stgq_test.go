package stgq_test

import (
	"errors"
	"testing"

	stgq "repro"
	"repro/internal/dataset"
)

// examplePlanner builds the Figure 3 instance through the public API.
func examplePlanner(t testing.TB) (*stgq.Planner, map[string]stgq.PersonID) {
	t.Helper()
	pl := stgq.NewPlanner(7)
	ids := map[string]stgq.PersonID{}
	for _, n := range []string{"v2", "v3", "v4", "v6", "v7", "v8"} {
		ids[n] = pl.AddPerson(n)
	}
	conn := func(a, b string, d float64) {
		if err := pl.Connect(ids[a], ids[b], d); err != nil {
			t.Fatal(err)
		}
	}
	conn("v7", "v2", 17)
	conn("v7", "v3", 18)
	conn("v7", "v6", 23)
	conn("v7", "v8", 25)
	conn("v7", "v4", 27)
	conn("v2", "v4", 14)
	conn("v2", "v6", 19)
	conn("v3", "v4", 20)
	conn("v4", "v6", 29)
	avail := map[string][][2]int{
		"v2": {{0, 7}},
		"v3": {{1, 3}, {4, 6}},
		"v4": {{0, 5}, {6, 7}},
		"v6": {{1, 7}},
		"v7": {{0, 6}},
		"v8": {{0, 1}, {2, 3}, {4, 6}},
	}
	for n, ranges := range avail {
		for _, r := range ranges {
			if err := pl.SetAvailable(ids[n], r[0], r[1]); err != nil {
				t.Fatal(err)
			}
		}
	}
	return pl, ids
}

func TestFindGroupAllEngines(t *testing.T) {
	pl, ids := examplePlanner(t)
	for _, alg := range []stgq.Algorithm{stgq.AlgDefault, stgq.AlgBaseline, stgq.AlgIP} {
		res, err := pl.FindGroup(stgq.SGQuery{
			Initiator: ids["v7"], P: 4, S: 1, K: 1, Algorithm: alg,
		})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if res.TotalDistance != 62 {
			t.Errorf("%v: distance = %v, want 62", alg, res.TotalDistance)
		}
		if len(res.Members) != 4 {
			t.Errorf("%v: %d members, want 4", alg, len(res.Members))
		}
	}
}

func TestPlanActivityAllEngines(t *testing.T) {
	pl, ids := examplePlanner(t)
	for _, alg := range []stgq.Algorithm{stgq.AlgDefault, stgq.AlgBaseline, stgq.AlgIP} {
		res, err := pl.PlanActivity(stgq.STGQuery{
			SGQuery: stgq.SGQuery{Initiator: ids["v7"], P: 4, S: 1, K: 1, Algorithm: alg},
			M:       3,
		})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if res.TotalDistance != 67 {
			t.Errorf("%v: distance = %v, want 67", alg, res.TotalDistance)
		}
		if res.Window.Start != 1 || res.Window.End != 5 {
			t.Errorf("%v: window = %+v, want [1,5)", alg, res.Window)
		}
		names := map[string]bool{}
		for _, m := range res.Members {
			names[m.Name] = true
		}
		for _, want := range []string{"v2", "v4", "v6", "v7"} {
			if !names[want] {
				t.Errorf("%v: members missing %s", alg, want)
			}
		}
	}
}

func TestPlanActivityParallel(t *testing.T) {
	pl, ids := examplePlanner(t)
	seq, err := pl.PlanActivity(stgq.STGQuery{
		SGQuery: stgq.SGQuery{Initiator: ids["v7"], P: 4, S: 1, K: 1},
		M:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	par, err := pl.PlanActivity(stgq.STGQuery{
		SGQuery:  stgq.SGQuery{Initiator: ids["v7"], P: 4, S: 1, K: 1},
		M:        3,
		Parallel: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if par.TotalDistance != seq.TotalDistance {
		t.Errorf("parallel %v != sequential %v", par.TotalDistance, seq.TotalDistance)
	}
}

func TestManualVsAutomaticPlanning(t *testing.T) {
	pl, ids := examplePlanner(t)
	manual, err := pl.PlanManually(stgq.STGQuery{
		SGQuery: stgq.SGQuery{Initiator: ids["v7"], P: 4, S: 1},
		M:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if manual.Window.Len() != 3 {
		t.Errorf("manual window %+v, want length 3", manual.Window)
	}
	k, plan, err := pl.PlanWithSmallestK(stgq.STGQuery{
		SGQuery: stgq.SGQuery{Initiator: ids["v7"], P: 4, S: 1},
		M:       3,
	}, manual.TotalDistance)
	if err != nil {
		t.Fatal(err)
	}
	if plan.TotalDistance > manual.TotalDistance {
		t.Errorf("automatic plan %v worse than manual %v", plan.TotalDistance, manual.TotalDistance)
	}
	if k > manual.ObservedK {
		t.Errorf("smallest k %d exceeds manual k_h %d", k, manual.ObservedK)
	}
}

func TestQueryErrors(t *testing.T) {
	pl, ids := examplePlanner(t)
	if _, err := pl.FindGroup(stgq.SGQuery{Initiator: 99, P: 3, S: 1, K: 1}); !errors.Is(err, stgq.ErrPersonNotFound) {
		t.Errorf("unknown initiator: %v", err)
	}
	if _, err := pl.FindGroup(stgq.SGQuery{Initiator: ids["v7"], P: 3, S: 0, K: 1}); !errors.Is(err, stgq.ErrBadQuery) {
		t.Errorf("s=0: %v", err)
	}
	if _, err := pl.FindGroup(stgq.SGQuery{Initiator: ids["v7"], P: 40, S: 1, K: 1}); !errors.Is(err, stgq.ErrNoFeasibleGroup) {
		t.Errorf("oversized p: %v", err)
	}
	if _, err := pl.FindGroup(stgq.SGQuery{Initiator: ids["v7"], P: 3, S: 1, K: 1, Algorithm: stgq.Algorithm(9)}); !errors.Is(err, stgq.ErrBadQuery) {
		t.Errorf("unknown algorithm: %v", err)
	}
	if err := pl.SetAvailable(ids["v7"], -1, 3); !errors.Is(err, stgq.ErrBadQuery) {
		t.Errorf("negative slot: %v", err)
	}
	if err := pl.SetAvailable(stgq.PersonID(99), 0, 3); !errors.Is(err, stgq.ErrPersonNotFound) {
		t.Errorf("unknown person: %v", err)
	}
}

func TestPersonLookupAndAccessors(t *testing.T) {
	pl, ids := examplePlanner(t)
	got, err := pl.PersonByName("v7")
	if err != nil || got != ids["v7"] {
		t.Errorf("PersonByName: %v, %v", got, err)
	}
	if _, err := pl.PersonByName("nobody"); err == nil {
		t.Error("unknown name should fail")
	}
	if pl.Name(ids["v2"]) != "v2" {
		t.Error("Name lookup wrong")
	}
	if pl.NumPeople() != 6 || pl.NumFriendships() != 9 {
		t.Errorf("counts: %d people, %d edges", pl.NumPeople(), pl.NumFriendships())
	}
	if pl.Horizon() != 7 {
		t.Errorf("horizon = %d", pl.Horizon())
	}
}

func TestSchedulesMutableBetweenQueries(t *testing.T) {
	pl, ids := examplePlanner(t)
	q := stgq.STGQuery{
		SGQuery: stgq.SGQuery{Initiator: ids["v7"], P: 4, S: 1, K: 1},
		M:       3,
	}
	before, err := pl.PlanActivity(q)
	if err != nil {
		t.Fatal(err)
	}
	// v6 cancels everything: the optimal group must change or vanish.
	if err := pl.SetBusy(ids["v6"], 0, 7); err != nil {
		t.Fatal(err)
	}
	after, err := pl.PlanActivity(q)
	if err == nil {
		if after.TotalDistance <= before.TotalDistance {
			t.Errorf("after v6 cancels, distance %v should exceed %v (or be infeasible)",
				after.TotalDistance, before.TotalDistance)
		}
	} else if !errors.Is(err, stgq.ErrNoFeasibleGroup) {
		t.Fatal(err)
	}
}

func TestFromDataset(t *testing.T) {
	d := dataset.Real194(42, 2)
	pl := stgq.FromDataset(d)
	if pl.NumPeople() != dataset.Real194Size {
		t.Fatalf("people = %d", pl.NumPeople())
	}
	q := stgq.PersonID(d.PickInitiator(75))
	res, err := pl.FindGroup(stgq.SGQuery{Initiator: q, P: 4, S: 1, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Members) != 4 || res.TotalDistance <= 0 {
		t.Errorf("implausible result: %+v", res)
	}
	// Cross-check against the baseline engine on the same dataset.
	base, err := pl.FindGroup(stgq.SGQuery{Initiator: q, P: 4, S: 1, K: 2, Algorithm: stgq.AlgBaseline})
	if err != nil {
		t.Fatal(err)
	}
	if base.TotalDistance != res.TotalDistance {
		t.Errorf("engines disagree: %v vs %v", res.TotalDistance, base.TotalDistance)
	}
}

func TestWindowFormat(t *testing.T) {
	w := stgq.TimeWindow{Start: 36, End: 40}
	if got := w.Format(); got != "day1 18:00 – day1 19:30" {
		t.Errorf("Format = %q", got)
	}
	if (stgq.TimeWindow{}).Format() != "(empty)" {
		t.Error("empty window format wrong")
	}
	if w.Len() != 4 {
		t.Error("Len wrong")
	}
}
